package ptas

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"tcsa/internal/conformance"
	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
)

func fig2() *core.GroupSet {
	return core.MustGroupSet([]core.Group{{Time: 2, Count: 3}, {Time: 4, Count: 5}, {Time: 8, Count: 3}})
}

func TestGridDerivation(t *testing.T) {
	// (1+δ)^(2h) must not exceed 1+ε: one rounding per chain position on
	// each of the two grid axes compounds to at most the requested slack.
	for _, eps := range []float64{0.01, 0.05, 0.1, 0.25, 1.0} {
		for _, h := range []int{1, 2, 8, 16, 32} {
			d := Grid(eps, h)
			if d <= 0 {
				t.Fatalf("Grid(%v, %d) = %v, want > 0", eps, h, d)
			}
			if got := math.Pow(1+d, float64(2*h)); got > 1+eps+1e-12 {
				t.Errorf("Grid(%v, %d): (1+δ)^(2h) = %v > 1+ε", eps, h, got)
			}
		}
	}
	if Grid(0.1, 16) >= Grid(0.1, 8) {
		t.Error("grid not finer for larger h")
	}
	if Grid(0.05, 8) >= Grid(0.1, 8) {
		t.Error("grid not finer for smaller eps")
	}
}

func TestExactLimitScaling(t *testing.T) {
	if ExactLimit(0.1) != 4096 {
		t.Errorf("ExactLimit(0.1) = %v, want the 4096 floor", ExactLimit(0.1))
	}
	if ExactLimit(0.01) <= ExactLimit(0.05) {
		t.Error("tighter eps must widen the exact regime")
	}
}

func TestOptimizeFigure2(t *testing.T) {
	res, err := Optimize(context.Background(), fig2(), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Error("Figure 2 family should be scanned exactly")
	}
	// PAMAD finds S=(4,2,1) with D'=1/24 here and the family optimum
	// matches; the exact-path scan must find it.
	if res.Delay > 1.0/24.0+1e-12 {
		t.Errorf("delay %v worse than the known optimum 1/24 (S=%v)", res.Delay, res.Frequencies)
	}
	if err := conformance.DivisorChainFamily(fig2(), res.Frequencies); err != nil {
		t.Error(err)
	}
	if res.Evaluated == 0 || res.States == 0 {
		t.Errorf("diagnostics not recorded: %+v", res)
	}
}

func TestOptimizeErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := Optimize(ctx, nil, 3, Options{}); err == nil {
		t.Error("nil group set accepted")
	}
	if _, err := Optimize(ctx, fig2(), 0, Options{}); err == nil {
		t.Error("0 channels accepted")
	}
	if _, err := Optimize(ctx, fig2(), 3, Options{Eps: -0.5}); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := Optimize(ctx, fig2(), 3, Options{Eps: math.NaN()}); err == nil {
		t.Error("NaN eps accepted")
	}
	if _, err := Optimize(ctx, fig2(), 3, Options{Caps: []int{4}}); err == nil {
		t.Error("wrong-length caps accepted")
	}
	if _, err := Optimize(ctx, fig2(), 3, Options{Caps: []int{4, 0}}); err == nil {
		t.Error("zero cap accepted")
	}
}

func TestOptimizeSingleGroup(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 4, Count: 10}})
	res, err := Optimize(context.Background(), gs, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frequencies) != 1 || res.Frequencies[0] != 1 {
		t.Errorf("Frequencies = %v, want [1]", res.Frequencies)
	}
	if !res.Exact {
		t.Error("single group must be exact")
	}
}

// TestOptimizeZeroDelayCoverage: whenever the channel budget admits a
// zero-delay vector at all, the snapped sufficient-frequency candidate
// guarantees Optimize returns one — the regime where a (1+ε) multiplicative
// bound demands exact optimality.
func TestOptimizeZeroDelayCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	for trial := 0; trial < 40; trial++ {
		gs := randomGroupSet(rng, 4)
		nReal := gs.MinChannels() + rng.Intn(3)
		res, err := Optimize(ctx, gs, nReal, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Delay != 0 {
			t.Errorf("instance %v N=%d >= minimum %d: delay %v, want 0",
				gs, nReal, gs.MinChannels(), res.Delay)
		}
	}
}

// TestOptimizeParallelismBitIdentical: the scoring shard layout must not
// leak into the result — frequencies, delay and Evaluated are pinned across
// worker counts.
func TestOptimizeParallelismBitIdentical(t *testing.T) {
	gs := paperUniform(25, 8)
	ctx := context.Background()
	base, err := Optimize(ctx, gs, 10, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 8, 32} {
		res, err := Optimize(ctx, gs, 10, Options{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if res.Delay != base.Delay || res.Evaluated != base.Evaluated {
			t.Errorf("parallelism %d: (delay, evaluated) = (%v, %d), want (%v, %d)",
				par, res.Delay, res.Evaluated, base.Delay, base.Evaluated)
		}
		for i := range base.Frequencies {
			if res.Frequencies[i] != base.Frequencies[i] {
				t.Errorf("parallelism %d: frequencies %v != %v", par, res.Frequencies, base.Frequencies)
				break
			}
		}
	}
}

// TestOptimizeFamilyValidity: every returned vector is a divisor-chain
// member, on exact and approximate paths alike.
func TestOptimizeFamilyValidity(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		gs := randomGroupSet(rng, 4)
		nReal := 1 + rng.Intn(gs.MinChannels())
		res, err := Optimize(ctx, gs, nReal, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := conformance.DivisorChainFamily(gs, res.Frequencies); err != nil {
			t.Fatalf("instance %v N=%d: %v (S=%v)", gs, nReal, err, res.Frequencies)
		}
	}
	// Approximate path: a wide instance whose family exceeds the exact
	// limit, at several slacks.
	gs := paperUniform(20, 10)
	for _, eps := range []float64{0.05, 0.1, 0.5} {
		res, err := Optimize(ctx, gs, 12, Options{Eps: eps})
		if err != nil {
			t.Fatal(err)
		}
		if res.Exact {
			t.Fatalf("eps=%v: h=10 family unexpectedly within the exact limit", eps)
		}
		if err := conformance.DivisorChainFamily(gs, res.Frequencies); err != nil {
			t.Fatalf("eps=%v: %v (S=%v)", eps, err, res.Frequencies)
		}
	}
}

// TestOptimizeBeamTruncation: a tiny MaxStates must engage the safety
// valve, be reported, and still yield a valid family member.
func TestOptimizeBeamTruncation(t *testing.T) {
	gs := paperUniform(10, 10)
	res, err := Optimize(context.Background(), gs, 12, Options{Eps: 0.1, MaxStates: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("MaxStates=8 on an h=10 instance did not report truncation")
	}
	if err := conformance.DivisorChainFamily(gs, res.Frequencies); err != nil {
		t.Error(err)
	}
}

func TestOptimizePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Optimize(ctx, fig2(), 3, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("pre-cancelled optimize returned a result")
	}
}

func TestSnapToFamily(t *testing.T) {
	caps := []int{4, 4}
	for _, tc := range []struct {
		in, want delaymodel.Frequencies
	}{
		{delaymodel.Frequencies{8, 2, 1}, delaymodel.Frequencies{8, 2, 1}},  // already a member
		{delaymodel.Frequencies{9, 2, 1}, delaymodel.Frequencies{8, 2, 1}},  // ratio rounds down
		{delaymodel.Frequencies{40, 2, 1}, delaymodel.Frequencies{8, 2, 1}}, // ratio clamps to cap
		{delaymodel.Frequencies{1, 1, 1}, delaymodel.Frequencies{1, 1, 1}},  // floors at 1
		{delaymodel.Frequencies{0, 0, 0}, delaymodel.Frequencies{1, 1, 1}},  // degenerate input
	} {
		got := SnapToFamily(tc.in, caps)
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("SnapToFamily(%v) = %v, want %v", tc.in, got, tc.want)
				break
			}
		}
	}
}

// paperUniform is the paper's uniform workload shape widened to h groups:
// t=4·2^i, per pages each.
func paperUniform(per, h int) *core.GroupSet {
	groups := make([]core.Group, h)
	tt := 4
	for i := range groups {
		groups[i] = core.Group{Time: tt, Count: per}
		tt *= 2
	}
	return core.MustGroupSet(groups)
}

func randomGroupSet(rng *rand.Rand, maxH int) *core.GroupSet {
	h := 2 + rng.Intn(maxH-1)
	groups := make([]core.Group, h)
	tt := 2 + rng.Intn(3)
	for i := 0; i < h; i++ {
		groups[i] = core.Group{Time: tt, Count: 1 + rng.Intn(25)}
		tt *= 2
	}
	return core.MustGroupSet(groups)
}
