package hybrid

import (
	"math"
	"testing"

	"tcsa/internal/airwave"
	"tcsa/internal/mpb"
	"tcsa/internal/ondemand"
	"tcsa/internal/online"
	"tcsa/internal/pamad"
	"tcsa/internal/susc"
	"tcsa/internal/workload"
)

func TestRunValidation(t *testing.T) {
	gs, err := workload.GroupSet(workload.Uniform, 3, 30, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := susc.BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(nil, nil, Config{AbandonAfter: 1}); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := Run(prog, nil, Config{AbandonAfter: 0}); err == nil {
		t.Error("zero abandon threshold accepted")
	}
	if _, err := Run(prog, nil, Config{AbandonAfter: 2, DeadlineSlack: 1}); err == nil {
		t.Error("deadline slack below abandon threshold accepted")
	}
}

// TestValidProgramHasNoDefections: on a SUSC program every wait is within
// the expected time, so an impatience threshold of 1.0 never fires.
func TestValidProgramHasNoDefections(t *testing.T) {
	gs, err := workload.GroupSet(workload.Uniform, 3, 30, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := susc.BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.GenerateRequests(gs, prog.Length(), workload.RequestConfig{Count: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(prog, reqs, Config{
		AbandonAfter: 1.0,
		Pull:         ondemand.Config{ServiceTime: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Air.Abandoned != 0 || rep.PullShare != 0 {
		t.Errorf("valid program produced %d defections", rep.Air.Abandoned)
	}
	if rep.Pull.Submitted != 0 {
		t.Errorf("pull server saw %d requests", rep.Pull.Submitted)
	}
	if rep.EndToEnd.N != 500 {
		t.Errorf("end-to-end covers %d requests, want 500", rep.EndToEnd.N)
	}
	if math.Abs(rep.EndToEnd.Mean-rep.Air.AvgWait) > 1e-9 {
		t.Errorf("end-to-end mean %f != air wait %f with no defections",
			rep.EndToEnd.Mean, rep.Air.AvgWait)
	}
}

// TestDefectorsAccounted: every request shows up exactly once — served or
// defected — and the end-to-end summary covers all of them.
func TestDefectorsAccounted(t *testing.T) {
	gs, err := workload.GroupSet(workload.Uniform, 4, 80, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := pamad.Build(gs, 3) // scarce: defections guaranteed
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.GenerateRequests(gs, prog.Length(), workload.RequestConfig{Count: 800, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(prog, reqs, Config{
		AbandonAfter: 1.0,
		Pull:         ondemand.Config{ServiceTime: 1.5, Discipline: ondemand.EDF},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Air.Served+rep.Air.Abandoned != len(reqs) {
		t.Fatalf("served %d + abandoned %d != %d", rep.Air.Served, rep.Air.Abandoned, len(reqs))
	}
	if rep.Air.Abandoned == 0 {
		t.Fatal("expected defections on a scarce program")
	}
	if rep.Pull.Submitted != rep.Air.Abandoned || rep.Pull.Completed != rep.Air.Abandoned {
		t.Errorf("pull handled %d/%d, want %d", rep.Pull.Submitted, rep.Pull.Completed, rep.Air.Abandoned)
	}
	if rep.EndToEnd.N != len(reqs) {
		t.Errorf("end-to-end covers %d, want %d", rep.EndToEnd.N, len(reqs))
	}
	wantShare := float64(rep.Air.Abandoned) / float64(len(reqs))
	if math.Abs(rep.PullShare-wantShare) > 1e-12 {
		t.Errorf("PullShare = %f, want %f", rep.PullShare, wantShare)
	}
	// A defector's end-to-end includes a pull response >= service time, so
	// the maximum must exceed the pure-broadcast maximum wait.
	if rep.EndToEnd.Max < rep.Pull.Response.Min {
		t.Errorf("end-to-end max %f below pull minimum %f", rep.EndToEnd.Max, rep.Pull.Response.Min)
	}
}

// TestPAMADShedsLessThanMPB: the paper's motivating comparison as a
// library-level assertion.
func TestPAMADShedsLessThanMPB(t *testing.T) {
	gs, err := workload.GroupSet(workload.Uniform, 6, 300, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	const channels = 8
	pProg, _, err := pamad.Build(gs, channels)
	if err != nil {
		t.Fatal(err)
	}
	mProg, _, err := mpb.Build(gs, channels)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{AbandonAfter: 1.5, Pull: ondemand.Config{ServiceTime: 3, Discipline: ondemand.EDF}}
	pReqs, err := workload.GenerateRequests(gs, pProg.Length(), workload.RequestConfig{Count: 1500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mReqs, err := workload.GenerateRequests(gs, mProg.Length(), workload.RequestConfig{Count: 1500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Run(pProg, pReqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(mProg, mReqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.PullShare >= m.PullShare {
		t.Errorf("PAMAD pull share %f not below m-PB's %f", p.PullShare, m.PullShare)
	}
	if p.Pull.AvgResponse >= m.Pull.AvgResponse {
		t.Errorf("PAMAD pull response %f not below m-PB's %f", p.Pull.AvgResponse, m.Pull.AvgResponse)
	}
}

// TestDropAccountingExactlyOnce is the frame-loss accounting regression:
// with a deterministic drop function, clients whose closed-form wait is
// within the impatience threshold still defect on the simulated air. The
// served set must come from the simulator's serve events — reconstructing
// it from core.Analyze counted those clients twice (once as analytically
// "served", once as defectors).
func TestDropAccountingExactlyOnce(t *testing.T) {
	gs, err := workload.GroupSet(workload.Uniform, 3, 30, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := susc.BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	// Page 0 has t=2: suppressing its frames for the first 64 slots pushes
	// every page-0 client past arrival + 1.0*2 and forces defection, while
	// the closed-form wait (loss-blind) stays within the threshold.
	drop := func(f airwave.Frame) bool { return f.Page == 0 && f.Slot < 64 }
	reqs := []workload.Request{
		{Page: 0, Arrival: 0.5},
		{Page: 0, Arrival: 3},
		{Page: 0, Arrival: 7.25},
		{Page: 10, Arrival: 1},
		{Page: 20, Arrival: 2.5},
	}
	rep, err := Run(prog, reqs, Config{
		AbandonAfter: 1.0,
		Drop:         drop,
		Pull:         ondemand.Config{ServiceTime: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Air.Abandoned != 3 || rep.Air.Served != 2 {
		t.Fatalf("served %d abandoned %d, want 2/3", rep.Air.Served, rep.Air.Abandoned)
	}
	// The regression: the analytic reconstruction yielded N = 8 here
	// (3 defectors double-counted). Exactly-once accounting yields 5.
	if rep.EndToEnd.N != len(reqs) {
		t.Fatalf("end-to-end covers %d requests, want %d (defectors double-counted?)",
			rep.EndToEnd.N, len(reqs))
	}
	if rep.Pull.Completed != 3 {
		t.Fatalf("pull completed %d, want 3", rep.Pull.Completed)
	}
	// Defector latency = wait-until-defection (>= 2 slots) + pull response
	// (>= 2 slots service): the max must reflect the loss, not the
	// loss-blind closed form (<= 2 slots on this program).
	if rep.EndToEnd.Max < 4 {
		t.Fatalf("end-to-end max %f too small for a defected client", rep.EndToEnd.Max)
	}
}

// TestOnlineTierRouting: with Config.Online set, defectors enter the
// slot-level online scheduler at their defection instants instead of the
// queueing model, and the end-to-end summary still covers every request
// exactly once.
func TestOnlineTierRouting(t *testing.T) {
	gs, err := workload.GroupSet(workload.Uniform, 4, 80, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := pamad.Build(gs, 3) // scarce: defections guaranteed
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.GenerateRequests(gs, prog.Length(), workload.RequestConfig{Count: 800, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(prog, reqs, Config{
		AbandonAfter: 1.0,
		Online: &online.Config{
			Policy: online.LWF,
			Split:  online.Split{Mode: online.SplitReserved, OnlineChannels: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Air.Abandoned == 0 {
		t.Fatal("expected defections on a scarce program")
	}
	if rep.Online == nil {
		t.Fatal("online result missing")
	}
	if rep.Online.Requests != rep.Air.Abandoned {
		t.Fatalf("online tier saw %d requests, want %d defectors", rep.Online.Requests, rep.Air.Abandoned)
	}
	if rep.Pull.Submitted != 0 {
		t.Fatalf("queueing model still saw %d requests with the online tier active", rep.Pull.Submitted)
	}
	if rep.EndToEnd.N != len(reqs) {
		t.Fatalf("end-to-end covers %d, want %d", rep.EndToEnd.N, len(reqs))
	}
	if got := len(rep.Online.Flows); got != rep.Air.Abandoned {
		t.Fatalf("per-defector flows %d, want %d (RecordFlows must be forced on)", got, rep.Air.Abandoned)
	}
	// Every defector burned at least its full patience on air first, so the
	// end-to-end max must be at least the online tier's max flow.
	if rep.EndToEnd.Max < rep.Online.MaxFlow {
		t.Fatalf("end-to-end max %f below online max flow %f", rep.EndToEnd.Max, rep.Online.MaxFlow)
	}
}
