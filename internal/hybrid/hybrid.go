// Package hybrid couples the two halves of the paper's system model: the
// push side (a broadcast program on the air) and the pull side (the
// on-demand uplink server), under the Section 1 impatience dynamic —
// "when the waiting time is longer than the expected time of a client, the
// client could switch the access from a broadcast channel to an on-demand
// channel ... Too often and too many such actions could seriously congest
// the on-demand channels."
//
// Run drives a request population through the broadcast simulator; clients
// whose wait exceeds their patience defect at their defection instants
// into the pull tier. Two pull tiers are available: the default queueing
// model of the on-demand uplink (internal/ondemand), and — when
// Config.Online is set — the slot-level online broadcast scheduler
// (internal/online), where defectors join a live request queue whose
// policy competes with the push program for actual broadcast slots. The
// Report quantifies both sides plus the end-to-end picture, making the
// paper's motivating trade-off directly measurable for any scheduler.
package hybrid

import (
	"errors"
	"fmt"

	"tcsa/internal/airwave"
	"tcsa/internal/core"
	"tcsa/internal/eventsim"
	"tcsa/internal/ondemand"
	"tcsa/internal/online"
	"tcsa/internal/sim"
	"tcsa/internal/stats"
	"tcsa/internal/workload"
)

// Config parameterises the coupled system.
type Config struct {
	// AbandonAfter is the impatience threshold as a multiple of each
	// page's expected time; must be > 0 (a hybrid system without defection
	// is just the broadcast simulator).
	AbandonAfter float64
	// Pull configures the on-demand server (service time, workers,
	// discipline, queue bound). Ignored when Online is set.
	Pull ondemand.Config
	// Online, when non-nil, routes defectors into the slot-level online
	// broadcast tier instead of the on-demand queueing model: they enter
	// the live request queue at their defection instants and are served by
	// whichever tier airs their page first under Online.Split.
	// Online.RecordFlows is forced on (the per-defector flows feed the
	// end-to-end statistics).
	Online *online.Config
	// Mode selects the broadcast client strategy; default ScheduleAware.
	Mode sim.ClientMode
	// Drop optionally injects broadcast frame loss.
	Drop airwave.DropFunc
	// DeadlineSlack extends the pull deadline: a defector's response is
	// counted as a deadline miss if it completes after
	// arrival + DeadlineSlack * expected time. 0 defaults to 3.
	// Only meaningful for the on-demand pull tier.
	DeadlineSlack float64
}

// Report is the outcome of one hybrid run.
type Report struct {
	// Air is the broadcast side: served/abandoned counts and wait/delay
	// statistics for the clients the air satisfied.
	Air sim.Outcome
	// Pull is the on-demand side: queueing statistics for the defectors
	// (zero when Config.Online routed them to the online tier instead).
	Pull ondemand.Metrics
	// Online is the online-tier outcome for the defectors, present only
	// when Config.Online was set.
	Online *online.Result
	// PullShare is the fraction of all requests that defected.
	PullShare float64
	// EndToEnd summarises total latency (arrival to data) across both
	// paths: broadcast waits for the served, wait-until-defection plus
	// pull flow/response for the defectors.
	EndToEnd stats.Summary
}

// Run executes the coupled simulation.
func Run(prog *core.Program, reqs []workload.Request, cfg Config) (*Report, error) {
	if prog == nil {
		return nil, errors.New("hybrid: nil program")
	}
	if cfg.AbandonAfter <= 0 {
		return nil, fmt.Errorf("hybrid: abandon threshold %f (must be > 0)", cfg.AbandonAfter)
	}
	if cfg.DeadlineSlack == 0 {
		cfg.DeadlineSlack = 3
	}
	if cfg.DeadlineSlack < cfg.AbandonAfter {
		return nil, fmt.Errorf("hybrid: deadline slack %f below abandon threshold %f",
			cfg.DeadlineSlack, cfg.AbandonAfter)
	}
	gs := prog.GroupSet()

	type defection struct {
		req workload.Request
		at  float64
	}
	var defections []defection
	// Served-client waits come from the simulator's own serve events, not
	// from the closed-form appearance structure: under frame loss (or any
	// future fault mode) the two disagree, and reconstructing the served
	// set analytically double-counts clients the simulator defected.
	endToEnd := make([]float64, 0, len(reqs))
	air, err := sim.Run(prog, reqs, sim.Config{
		Mode:         cfg.Mode,
		AbandonAfter: cfg.AbandonAfter,
		Drop:         cfg.Drop,
		OnAbandon: func(r workload.Request, at float64) {
			defections = append(defections, defection{req: r, at: at})
		},
		Trace: func(ev sim.Event) {
			if ev.Kind == sim.EventServe {
				endToEnd = append(endToEnd, ev.Time-reqs[ev.Client].Arrival)
			}
		},
	})
	if err != nil {
		return nil, err
	}

	report := &Report{Air: *air}
	if len(reqs) > 0 {
		report.PullShare = float64(len(defections)) / float64(len(reqs))
	}

	switch {
	case len(defections) == 0:
		// No pull tier to drive.
	case cfg.Online != nil:
		// Defectors join the online tier's live queue at their defection
		// instants; their end-to-end latency is the time already burned
		// waiting on air plus the online tier's flow time.
		ocfg := *cfg.Online
		ocfg.RecordFlows = true
		defReqs := make([]workload.Request, len(defections))
		for i, d := range defections {
			defReqs[i] = workload.Request{Page: d.req.Page, Arrival: d.at}
		}
		res, err := online.Run(prog, workload.SliceStream(defReqs), ocfg)
		if err != nil {
			return nil, fmt.Errorf("hybrid: online tier: %w", err)
		}
		report.Online = res
		for i, d := range defections {
			endToEnd = append(endToEnd, (d.at-d.req.Arrival)+res.Flows[i])
		}
	default:
		var clock eventsim.Simulator
		pullCfg := cfg.Pull
		pullCfg.OnComplete = func(req ondemand.Request, submitted, completed float64) {
			d := defections[req.Tag]
			endToEnd = append(endToEnd, (d.at-d.req.Arrival)+(completed-submitted))
		}
		srv, err := ondemand.New(&clock, pullCfg)
		if err != nil {
			return nil, err
		}
		for i, d := range defections {
			i, d := i, d
			if err := clock.At(d.at, func() {
				srv.Submit(ondemand.Request{
					Page:     d.req.Page,
					Deadline: d.req.Arrival + cfg.DeadlineSlack*float64(gs.TimeOf(d.req.Page)),
					Tag:      uint64(i),
				})
			}); err != nil {
				return nil, err
			}
		}
		clock.Run()
		report.Pull = srv.Metrics()
	}
	report.EndToEnd = stats.Summarize(endToEnd)
	return report, nil
}
