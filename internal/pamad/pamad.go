// Package pamad implements the Progressively Approaching Minimum Average
// Delay (PAMAD) method of "Time-Constrained Service on Air" (ICDCS 2005),
// Section 4: broadcast scheduling when the available channels are fewer
// than the Theorem 3.1 minimum.
//
// Rather than dropping pages (which would push their clients onto the
// congested on-demand channel), PAMAD reduces how often each page is
// broadcast and disperses the resulting delay evenly:
//
//  1. Frequencies (Algorithm 3) derives per-group broadcast frequencies
//     S_1..S_h progressively: at stage i it varies the repetition factor
//     r_{i-1} of the already-scheduled prefix inside the t_i window and
//     keeps the value minimising the analytic average group delay D'_i;
//     finally S_i = prod_{j=i}^{h-1} r_j and S_h = 1.
//  2. Build (Algorithm 4) spreads each page's S_i appearances evenly over
//     the major cycle t_major = ceil(sum_i S_i*P_i / N_real).
//
// The package reproduces the paper's Figure 2 walkthrough exactly; see the
// tests.
//
//lint:deterministic bit-identical replay contract: no wall clock, no global RNG, no map-order folds
package pamad

import (
	"fmt"

	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
)

// Candidate records one evaluated repetition factor during a derivation
// stage.
type Candidate struct {
	R     int     // candidate r_{i-1}
	Delay float64 // D'_i at this candidate
}

// Stage records the derivation trace of one progressive step.
type Stage struct {
	Stage      int         // i, 2-based like the paper (stage 1 is trivial)
	Cap        int         // largest candidate considered (Algorithm 3 bound)
	Candidates []Candidate // evaluated candidates in order
	Chosen     int         // r_{i-1}^opt
	Delay      float64     // D'_i at the chosen candidate
}

// Result bundles everything Build produces besides the program itself.
type Result struct {
	Frequencies delaymodel.Frequencies // chosen S_1..S_h
	Trace       []Stage                // per-stage derivation trace
	MajorCycle  int                    // t_major in slots
	Delay       float64                // analytic D' of the chosen frequencies
	Placement   PlacementStats
}

// TieBreak selects how a derivation stage resolves ties in D'_i, which in
// practice occur only when several candidates reach D'_i = 0 (the
// near-sufficient regime). The paper's Algorithm 3 does not specify a rule.
type TieBreak int

const (
	// TieTowardRatio (default) breaks ties toward the deadline-preserving
	// factor t_i/t_{i-1}, so the derivation converges on the SUSC
	// frequencies S_i = t_h/t_i whenever bandwidth allows; the schedule
	// then degrades continuously into the sufficient-channel regime.
	TieTowardRatio TieBreak = iota
	// TieSmallestR keeps the first (smallest) argmin, the literal reading
	// of Algorithm 3's loop. It spends less bandwidth on early groups,
	// which can help or hurt later stages; see the ablation experiment.
	TieSmallestR
)

// Options tunes the frequency derivation.
type Options struct {
	TieBreak TieBreak
}

// Frequencies runs Algorithm 3 with default options: the progressive
// derivation of the broadcast frequencies S_1..S_h for nReal channels. It
// works for any nReal >= 1, including the sufficient-channel regime (where
// the default tie-break converges on zero-delay frequencies).
func Frequencies(gs *core.GroupSet, nReal int) (delaymodel.Frequencies, []Stage, error) {
	return FrequenciesOpt(gs, nReal, Options{})
}

// FrequenciesOpt is Frequencies with explicit options.
func FrequenciesOpt(gs *core.GroupSet, nReal int, opts Options) (delaymodel.Frequencies, []Stage, error) {
	if gs == nil {
		return nil, nil, fmt.Errorf("%w: nil group set", core.ErrInvalidGroupSet)
	}
	if nReal < 1 {
		return nil, nil, fmt.Errorf("%w: %d channels", core.ErrInsufficientChannels, nReal)
	}
	h := gs.Len()
	r := make([]int, h) // r[i] = r_{i+1} in paper numbering; r[h-1] unused (=1)
	for i := range r {
		r[i] = 1
	}
	var trace []Stage

	// Stage i (paper numbering, 2..h): choose r_{i-1}.
	s := make(delaymodel.Frequencies, h)
	for i := 2; i <= h; i++ {
		limit := candidateCap(gs, r, i, nReal)
		// ci is the deadline-preserving repetition factor t_i/t_{i-1}: with
		// r_{i-1} = ci every already-scheduled group keeps meeting its own
		// expected time inside the t_i window. Under TieTowardRatio, ties
		// in D'_i are broken toward ci so the derivation converges on the
		// SUSC frequencies S_i = t_h/t_i whenever bandwidth allows instead
		// of greedily locking a too-low prefix frequency in.
		ci := gs.Group(i-1).Time / gs.Group(i-2).Time
		st := Stage{Stage: i, Cap: limit, Chosen: 1}
		best := -1.0
		// The stage-i vector is linear in the candidate: S_g = cand*unit_g
		// for the prefix groups g < i-1 and S_{i-1} = 1, so the transmission
		// total is F(cand) = cand*prefixSlots + P_{i-1}. Maintaining both
		// incrementally keeps the candidate loop free of the per-candidate
		// vector allocation and O(h) prefix-sum recomputation StageDelay
		// would otherwise repeat.
		r[i-2] = 1
		unit := stageFrequencies(r, i)
		prefixSlots := 0
		for g := 0; g < i-1; g++ {
			prefixSlots += unit[g] * gs.Group(g).Count
		}
		f := gs.Group(i - 1).Count
		s[i-1] = 1
		for cand := 1; cand <= limit; cand++ {
			r[i-2] = cand
			for g := 0; g < i-1; g++ {
				s[g] = cand * unit[g]
			}
			f += prefixSlots
			d := delaymodel.StageDelayTotal(gs, s, i, nReal, f)
			st.Candidates = append(st.Candidates, Candidate{R: cand, Delay: d})
			better := best < 0 || d < best
			// Tie detection is deliberately exact: tying candidates (in
			// practice those on the D'_i = 0 plateau) produce bit-identical
			// StageDelay values, and an epsilon would merge genuinely
			// distinct optima.
			//lint:ignore floateq exact tie detection on bit-identical StageDelay values
			if !better && d == best && opts.TieBreak == TieTowardRatio {
				better = closerTo(cand, st.Chosen, ci)
			}
			if better {
				best = d
				st.Chosen = cand
			}
			//lint:ignore floateq the zero plateau is exact: StageDelay returns a literal 0 when every gap fits
			if d == 0 && (opts.TieBreak == TieSmallestR || cand >= ci) {
				// Beyond this point larger r cannot be strictly better: the
				// stage delay is already zero and (for the ratio tie-break)
				// the target factor is reached; extra repetitions only
				// inflate the cycle. The paper stops here too: "we do not
				// have to consider r >= 3".
				break
			}
		}
		st.Delay = best
		r[i-2] = st.Chosen
		trace = append(trace, st)
	}

	return stageFrequencies(r, h), trace, nil
}

// closerTo reports whether a is strictly closer to target than b (larger
// value wins exact-distance ties, favouring higher frequency).
func closerTo(a, b, target int) bool {
	da, db := absInt(a-target), absInt(b-target)
	if da != db {
		return da < db
	}
	return a > b
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// stageFrequencies materialises the stage-i frequency vector
// S_g = prod_{l=g}^{i-1} r_l (g < i), S_i = 1, from the r prefix.
// Indexes: r[l] corresponds to the paper's r_{l+1}.
func stageFrequencies(r []int, stage int) delaymodel.Frequencies {
	s := make(delaymodel.Frequencies, stage)
	s[stage-1] = 1
	for g := stage - 2; g >= 0; g-- {
		s[g] = s[g+1] * r[g]
	}
	return s
}

// candidateCap evaluates Algorithm 3's loop bound for stage i: the number
// of whole repetitions of the groups-1..i-1 prefix program that fit in the
// t_i window after reserving P_i slots for group i, never below 1.
func candidateCap(gs *core.GroupSet, r []int, i, nReal int) int {
	ti := gs.Group(i - 1).Time
	pi := gs.Group(i - 1).Count
	// One repetition of the prefix costs sum_{j=1}^{i-2} prod_{k=j}^{i-2}
	// r_k * P_j + P_{i-1} slots.
	denom := gs.Group(i - 2).Count
	weight := 1
	for j := i - 2; j >= 1; j-- {
		weight *= r[j-1] // r_j in paper numbering is r[j-1]
		denom += weight * gs.Group(j-1).Count
	}
	numer := nReal*ti - pi
	if numer <= 0 || denom <= 0 {
		return 1
	}
	limit := core.CeilDiv(numer, denom)
	if limit < 1 {
		limit = 1
	}
	return limit
}

// Build runs the complete PAMAD method with default options: derive
// frequencies, then generate the broadcast program with evenly-spread
// placements (Algorithm 4).
func Build(gs *core.GroupSet, nReal int) (*core.Program, *Result, error) {
	return BuildOpt(gs, nReal, Options{})
}

// BuildOpt is Build with explicit options.
func BuildOpt(gs *core.GroupSet, nReal int, opts Options) (*core.Program, *Result, error) {
	s, trace, err := FrequenciesOpt(gs, nReal, opts)
	if err != nil {
		return nil, nil, err
	}
	prog, stats, err := PlaceEvenly(gs, s, nReal)
	if err != nil {
		return nil, nil, err
	}
	return prog, &Result{
		Frequencies: s,
		Trace:       trace,
		MajorCycle:  prog.Length(),
		Delay:       delaymodel.GroupDelay(gs, s, nReal),
		Placement:   stats,
	}, nil
}
