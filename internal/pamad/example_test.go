package pamad_test

import (
	"fmt"

	"tcsa/internal/core"
	"tcsa/internal/pamad"
)

// The paper's Figure 2 walkthrough: P = (3, 5, 3), t = (2, 4, 8), three of
// the four required channels available.
func ExampleBuild() {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 3}, {Time: 4, Count: 5}, {Time: 8, Count: 3}})
	prog, res, err := pamad.Build(gs, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("frequencies:", res.Frequencies)
	fmt.Println("major cycle:", prog.Length())
	for _, st := range res.Trace {
		fmt.Printf("stage %d: r=%d (D'=%.4f)\n", st.Stage, st.Chosen, st.Delay)
	}
	// Output:
	// frequencies: [4 2 1]
	// major cycle: 9
	// stage 2: r=2 (D'=0.0000)
	// stage 3: r=2 (D'=0.0417)
}
