package pamad

import (
	"math/rand"
	"testing"

	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
)

// earliestChangedGroup mirrors the replan engine's classification: the first
// group whose shape or frequency differs between the two instances.
func earliestChangedGroup(gsOld, gsNew *core.GroupSet, sOld, sNew delaymodel.Frequencies) int {
	h := gsNew.Len()
	for i := 0; i < h; i++ {
		if gsOld.Group(i) != gsNew.Group(i) || sOld[i] != sNew[i] {
			return i
		}
	}
	return h
}

// mutateGroups applies one random single-group edit (count +1, count -1, or
// a divisor-chain-preserving time change) and returns the edited instance,
// or nil when the rolled edit is not applicable.
func mutateGroups(rng *rand.Rand, gs *core.GroupSet) *core.GroupSet {
	groups := gs.Groups()
	g := rng.Intn(len(groups))
	switch rng.Intn(3) {
	case 0:
		groups[g].Count++
	case 1:
		if groups[g].Count == 1 {
			return nil
		}
		groups[g].Count--
	default:
		// Halve the first group's time: divides every later time, keeps
		// the chain strictly increasing.
		if groups[0].Time%2 != 0 {
			return nil
		}
		groups[0].Time /= 2
	}
	gsNew, err := core.NewGroupSet(groups)
	if err != nil {
		return nil
	}
	return gsNew
}

// TestPlacerMatchesPlaceEvenly: the checkpointed Placer's from-scratch build
// must be bit-identical (grid and stats) to PlaceEvenly for the same input.
func TestPlacerMatchesPlaceEvenly(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		gs := randomGroupSet(rng)
		nReal := 1 + rng.Intn(12)
		s, _, err := Frequencies(gs, nReal)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPlacer(gs, s, nReal)
		if err != nil {
			t.Fatalf("NewPlacer(%v, %v, %d): %v", gs, s, nReal, err)
		}
		want, wantStats, err := PlaceEvenly(gs, s, nReal)
		if err != nil {
			t.Fatal(err)
		}
		progsEqual(t, p.Program(), want)
		if p.Stats() != wantStats {
			t.Fatalf("stats = %+v, want %+v", p.Stats(), wantStats)
		}
		if got := len(p.SuffixCells(0)); got != want.Filled() {
			t.Fatalf("placement log holds %d cells, want %d", got, want.Filled())
		}
	}
}

// TestPlacerReplayFromMatchesScratch: after a random single-group edit, a
// suffix replay from the earliest changed group must land on a program
// bit-identical to PlaceEvenly rerun from scratch on the edited instance —
// including spill accounting — and report exactly the replayed cells.
func TestPlacerReplayFromMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	replays := 0
	for trial := 0; trial < 600; trial++ {
		gs := randomGroupSet(rng)
		nReal := 1 + rng.Intn(12)
		s, _, err := Frequencies(gs, nReal)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPlacer(gs, s, nReal)
		if err != nil {
			t.Fatal(err)
		}
		gsNew := mutateGroups(rng, gs)
		if gsNew == nil {
			continue
		}
		sNew, _, err := Frequencies(gsNew, nReal)
		if err != nil {
			continue
		}
		g := earliestChangedGroup(gs, gsNew, s, sNew)
		placed, err := p.ReplayFrom(g, gsNew, sNew)
		if sNew.MajorCycle(gsNew, nReal) != s.MajorCycle(gs, nReal) {
			if err == nil {
				t.Fatalf("trial %d: ReplayFrom accepted a t_major change", trial)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: ReplayFrom(%d): %v", trial, g, err)
		}
		replays++
		want, wantStats, err := PlaceEvenly(gsNew, sNew, nReal)
		if err != nil {
			t.Fatal(err)
		}
		progsEqual(t, p.Program(), want)
		if p.Stats() != wantStats {
			t.Fatalf("trial %d: stats = %+v, want %+v", trial, p.Stats(), wantStats)
		}
		if len(placed) != len(p.SuffixCells(g)) {
			t.Fatalf("trial %d: ReplayFrom returned %d cells, suffix log holds %d",
				trial, len(placed), len(p.SuffixCells(g)))
		}
	}
	if replays < 100 {
		t.Fatalf("only %d same-t_major replays exercised; weaken the filter", replays)
	}
}

// TestPlacerReplaySequence drives one Placer through a chain of edits — each
// a replay from the earliest changed group — checking bit-identity against
// from-scratch placement at every step. This is the live-engine usage
// pattern: state carried across many edits, not reset per edit.
func TestPlacerReplaySequence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	gs := core.MustGroupSet([]core.Group{{Time: 4, Count: 12}, {Time: 8, Count: 20}, {Time: 16, Count: 28}})
	nReal := 5
	s, _, err := Frequencies(gs, nReal)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlacer(gs, s, nReal)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for trial := 0; trial < 400; trial++ {
		gsNew := mutateGroups(rng, gs)
		if gsNew == nil {
			continue
		}
		sNew, _, err := Frequencies(gsNew, nReal)
		if err != nil || sNew.MajorCycle(gsNew, nReal) != s.MajorCycle(gs, nReal) {
			continue
		}
		g := earliestChangedGroup(gs, gsNew, s, sNew)
		if _, err := p.ReplayFrom(g, gsNew, sNew); err != nil {
			t.Fatalf("step %d: ReplayFrom(%d): %v", steps, g, err)
		}
		want, _, err := PlaceEvenly(gsNew, sNew, nReal)
		if err != nil {
			t.Fatal(err)
		}
		progsEqual(t, p.Program(), want)
		gs, s = gsNew, sNew
		steps++
	}
	if steps < 50 {
		t.Fatalf("only %d edit steps exercised", steps)
	}
}

// TestPlacerAppendLast: appending a page to the last group with the
// frequency vector and t_major unchanged must place exactly S_h cells and
// land bit-identical to a from-scratch placement of the grown instance.
func TestPlacerAppendLast(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	appends := 0
	for trial := 0; trial < 600; trial++ {
		gs := randomGroupSet(rng)
		nReal := 1 + rng.Intn(12)
		s, _, err := Frequencies(gs, nReal)
		if err != nil {
			t.Fatal(err)
		}
		groups := gs.Groups()
		groups[len(groups)-1].Count++
		gsNew := core.MustGroupSet(groups)
		sNew, _, err := Frequencies(gsNew, nReal)
		if err != nil || !sNew.Equal(s) || sNew.MajorCycle(gsNew, nReal) != s.MajorCycle(gs, nReal) {
			continue
		}
		p, err := NewPlacer(gs, s, nReal)
		if err != nil {
			t.Fatal(err)
		}
		placed, err := p.AppendLast(gsNew)
		if err != nil {
			t.Fatalf("trial %d: AppendLast: %v", trial, err)
		}
		if len(placed) != s[len(s)-1] {
			t.Fatalf("trial %d: AppendLast placed %d cells, want S_h=%d", trial, len(placed), s[len(s)-1])
		}
		want, wantStats, err := PlaceEvenly(gsNew, sNew, nReal)
		if err != nil {
			t.Fatal(err)
		}
		progsEqual(t, p.Program(), want)
		if p.Stats() != wantStats {
			t.Fatalf("trial %d: stats = %+v, want %+v", trial, p.Stats(), wantStats)
		}
		appends++
	}
	if appends < 100 {
		t.Fatalf("only %d appends exercised", appends)
	}
}

// TestPlacerRejects pins the Placer's contract errors: increasing frequency
// vectors (not a divisor chain), changed prefixes, and t_major drift all
// refuse to replay rather than silently corrupt the placement.
func TestPlacerRejects(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 2}, {Time: 4, Count: 2}})
	if _, err := NewPlacer(gs, delaymodel.Frequencies{1, 2}, 2); err == nil {
		t.Fatal("NewPlacer accepted an increasing frequency vector")
	}
	s, _, err := Frequencies(gs, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlacer(gs, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Prefix change below the replay point must be rejected.
	groups := gs.Groups()
	groups[0].Count++
	gsNew := core.MustGroupSet(groups)
	sNew, _, err := Frequencies(gsNew, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReplayFrom(1, gsNew, sNew); err == nil {
		t.Fatal("ReplayFrom(1) accepted a group-0 change")
	}
	if _, err := p.ReplayFrom(-1, gs, s); err == nil {
		t.Fatal("ReplayFrom(-1) accepted")
	}
	if _, err := p.ReplayFrom(3, gs, s); err == nil {
		t.Fatal("ReplayFrom past the group count accepted")
	}
}

// TestPlaceEvenlyAllocs pins PlaceEvenly's allocation count: the placement
// path allocates the program, two column arrays, the sort order and its
// closure machinery — and nothing per page or per cell.
func TestPlaceEvenlyAllocs(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{
		{Time: 4, Count: 400}, {Time: 8, Count: 400}, {Time: 16, Count: 400}, {Time: 32, Count: 400},
	})
	nReal := core.CeilDiv(gs.MinChannels(), 5)
	s, _, err := Frequencies(gs, nReal)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := PlaceEvenly(gs, s, nReal); err != nil {
			t.Fatal(err)
		}
	})
	// Measured 8 on go1.x linux/amd64: program struct + grid, freeInCol,
	// chain, order slice, sort.SliceStable closure + reflect swapper.
	const maxAllocs = 10
	if allocs > maxAllocs {
		t.Fatalf("PlaceEvenly allocates %.0f times per run, want <= %d", allocs, maxAllocs)
	}
}
