package pamad

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tcsa/internal/conformance"
	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
)

func fig2() *core.GroupSet {
	return core.MustGroupSet([]core.Group{{Time: 2, Count: 3}, {Time: 4, Count: 5}, {Time: 8, Count: 3}})
}

// TestFigure2Frequencies reproduces the paper's Figure 2(b) derivation with
// N_real = 3: r_1^opt = 2, r_2^opt = 2, S = (4, 2, 1).
func TestFigure2Frequencies(t *testing.T) {
	s, trace, err := Frequencies(fig2(), 3)
	if err != nil {
		t.Fatal(err)
	}
	want := delaymodel.Frequencies{4, 2, 1}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("S = %v, want %v", s, want)
		}
	}
	if len(trace) != 2 {
		t.Fatalf("trace has %d stages, want 2", len(trace))
	}
	// Stage 2: candidates r_1 = 1 (D'=0.125) then 2 (D'=0); cap ceil(7/3)=3.
	st := trace[0]
	if st.Stage != 2 || st.Chosen != 2 || st.Cap != 3 {
		t.Errorf("stage 2 = %+v, want Stage=2 Chosen=2 Cap=3", st)
	}
	if len(st.Candidates) != 2 {
		t.Errorf("stage 2 evaluated %d candidates, want 2 (stop at zero delay)", len(st.Candidates))
	}
	if math.Abs(st.Candidates[0].Delay-0.125) > 1e-9 || st.Candidates[1].Delay != 0 {
		t.Errorf("stage 2 candidate delays = %+v, want 0.125 then 0", st.Candidates)
	}
	// Stage 3: r_2 = 1 gives ~0.155, r_2 = 2 gives ~0.0417.
	st = trace[1]
	if st.Stage != 3 || st.Chosen != 2 {
		t.Errorf("stage 3 = %+v, want Chosen=2", st)
	}
	if math.Abs(st.Delay-1.0/24.0) > 1e-9 {
		t.Errorf("stage 3 delay = %f, want %f", st.Delay, 1.0/24.0)
	}
}

// TestFigure2Build checks the full Figure 2 pipeline: t_major = 9, and the
// conformance spill-accounting oracle (all 25 transmissions placed, every
// page appearing exactly S_i times, empty-slot bookkeeping consistent).
func TestFigure2Build(t *testing.T) {
	gs := fig2()
	prog, res, err := Build(gs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Length() != 9 {
		t.Errorf("t_major = %d, want ceil(25/3) = 9", prog.Length())
	}
	if prog.Channels() != 3 {
		t.Errorf("channels = %d, want 3", prog.Channels())
	}
	if err := conformance.SpillAccounting(prog, res.Frequencies,
		conformance.PlacementCounts(res.Placement)); err != nil {
		t.Error(err)
	}
	if res.Placement.EmptySlots != 27-25 {
		t.Errorf("empty slots = %d, want 2", res.Placement.EmptySlots)
	}
	if math.Abs(res.Delay-1.0/24.0) > 1e-9 {
		t.Errorf("Delay = %f, want %f", res.Delay, 1.0/24.0)
	}
}

func TestFrequenciesErrors(t *testing.T) {
	if _, _, err := Frequencies(nil, 3); err == nil {
		t.Error("nil group set accepted")
	}
	if _, _, err := Frequencies(fig2(), 0); err == nil {
		t.Error("0 channels accepted")
	}
	if _, _, err := Build(fig2(), 0); err == nil {
		t.Error("Build with 0 channels accepted")
	}
}

func TestSingleGroupFrequencies(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 4, Count: 10}})
	s, trace, err := Frequencies(gs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 1 || s[0] != 1 {
		t.Errorf("S = %v, want [1]", s)
	}
	if len(trace) != 0 {
		t.Errorf("trace = %v, want empty (stage 1 is trivial)", trace)
	}
}

// TestSufficientChannelsZeroDelay: with N >= MinChannels PAMAD recovers the
// zero-delay frequencies S_i = t_h/t_i on the Figure 2 instance.
func TestSufficientChannelsZeroDelay(t *testing.T) {
	gs := fig2()
	s, _, err := Frequencies(gs, gs.MinChannels())
	if err != nil {
		t.Fatal(err)
	}
	if d := delaymodel.GroupDelay(gs, s, gs.MinChannels()); d != 0 {
		t.Errorf("delay at sufficient channels = %f, want 0 (S=%v)", d, s)
	}
}

// TestFrequenciesRespectLowerBound: every S_i >= 1 even at one channel on
// heavily overloaded instances.
func TestFrequenciesRespectLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gs := randomGroupSet(rng)
		nReal := 1 + rng.Intn(gs.MinChannels())
		s, _, err := Frequencies(gs, nReal)
		if err != nil {
			return false
		}
		return s.Validate(gs) == nil && s[gs.Len()-1] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestFrequenciesMonotoneStructure: S_i is non-increasing in i (pages with
// tighter expected times are broadcast at least as often).
func TestFrequenciesMonotoneStructure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gs := randomGroupSet(rng)
		nReal := 1 + rng.Intn(gs.MinChannels())
		s, _, err := Frequencies(gs, nReal)
		if err != nil {
			return false
		}
		for i := 1; i < len(s); i++ {
			if s[i] > s[i-1] {
				return false
			}
			if s[i-1]%s[i] != 0 { // divisor-chain structure S_i = r_i*S_{i+1}
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPlaceEvenlyProperties: every page appears exactly S_i times, the grid
// is consistent, and the empirical delay of the built program is close to
// the ideal even-spread model.
func TestPlaceEvenlyProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gs := randomGroupSet(rng)
		nReal := 1 + rng.Intn(gs.MinChannels())
		prog, res, err := Build(gs, nReal)
		if err != nil {
			t.Logf("seed %d (%v, N=%d): %v", seed, gs, nReal, err)
			return false
		}
		for id := core.PageID(0); int(id) < gs.Pages(); id++ {
			if prog.CountOf(id) != res.Frequencies[gs.GroupOf(id)] {
				t.Logf("seed %d: page %d count mismatch", seed, id)
				return false
			}
		}
		if prog.Filled() != res.Frequencies.TotalSlots(gs) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBuildDelayTracksModel compares the exact measured delay of the
// generated program against the ideal even-spacing model: Algorithm 4's
// discretisation should stay within a couple of slots.
func TestBuildDelayTracksModel(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{
		{Time: 4, Count: 30}, {Time: 8, Count: 40}, {Time: 16, Count: 30}, {Time: 32, Count: 20},
	})
	for nReal := 1; nReal < gs.MinChannels(); nReal++ {
		prog, res, err := Build(gs, nReal)
		if err != nil {
			t.Fatalf("N=%d: %v", nReal, err)
		}
		if err := conformance.SpillAccounting(prog, res.Frequencies,
			conformance.PlacementCounts(res.Placement)); err != nil {
			t.Errorf("N=%d: %v", nReal, err)
		}
		measured := core.Analyze(prog).AvgDelay()
		ideal := delaymodel.ExactDelay(gs, res.Frequencies, nReal)
		if math.Abs(measured-ideal) > 2.0+0.1*ideal {
			t.Errorf("N=%d: measured AvgD %.3f vs ideal %.3f (S=%v, spills=%d)",
				nReal, measured, ideal, res.Frequencies, res.Placement.Spills)
		}
	}
}

// TestEveryPageWithinWindowSpread: with zero spills each page's k-th
// appearance lands inside its designated window.
func TestWindowedPlacement(t *testing.T) {
	gs := fig2()
	prog, res, err := Build(gs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.Spills != 0 {
		t.Skipf("placement spilled %d times; window assertion not applicable", res.Placement.Spills)
	}
	tMajor := prog.Length()
	for id := core.PageID(0); int(id) < gs.Pages(); id++ {
		si := res.Frequencies[gs.GroupOf(id)]
		cols := prog.Appearances(id)
		if len(cols) != si {
			t.Fatalf("page %d: %d distinct columns, want %d", id, len(cols), si)
		}
		for k, col := range cols {
			lo := core.CeilDiv(tMajor*k, si)
			hi := core.CeilDiv(tMajor*(k+1), si)
			if col < lo || col >= hi {
				t.Errorf("page %d appearance %d at column %d outside window [%d,%d)", id, k, col, lo, hi)
			}
		}
	}
}

func TestPlaceEvenlyValidatesInput(t *testing.T) {
	gs := fig2()
	if _, _, err := PlaceEvenly(gs, delaymodel.Frequencies{1, 1}, 3); err == nil {
		t.Error("short frequency vector accepted")
	}
	if _, _, err := PlaceEvenly(gs, delaymodel.Frequencies{1, 1, 1}, 0); err == nil {
		t.Error("0 channels accepted")
	}
}

func randomGroupSet(rng *rand.Rand) *core.GroupSet {
	h := 1 + rng.Intn(5)
	groups := make([]core.Group, h)
	tt := 2 + rng.Intn(4)
	for i := 0; i < h; i++ {
		groups[i] = core.Group{Time: tt, Count: 1 + rng.Intn(30)}
		tt *= 2
	}
	return core.MustGroupSet(groups)
}

// TestTieBreakModes: the paper-literal TieSmallestR picks r_1 = 1 where the
// default breaks the zero-delay tie toward the deadline ratio; both must be
// valid frequency vectors and agree whenever no tie occurs (Figure 2).
func TestTieBreakModes(t *testing.T) {
	gs := fig2()
	def, _, err := FrequenciesOpt(gs, 3, Options{TieBreak: TieTowardRatio})
	if err != nil {
		t.Fatal(err)
	}
	lit, _, err := FrequenciesOpt(gs, 3, Options{TieBreak: TieSmallestR})
	if err != nil {
		t.Fatal(err)
	}
	for i := range def {
		if def[i] != lit[i] {
			t.Errorf("tie-break changed the no-tie Figure 2 result: %v vs %v", def, lit)
			break
		}
	}
	// At sufficient channels stage delays tie at zero: literal keeps r=1,
	// default climbs to the ratio.
	n := gs.MinChannels()
	def, _, err = FrequenciesOpt(gs, n, Options{TieBreak: TieTowardRatio})
	if err != nil {
		t.Fatal(err)
	}
	lit, _, err = FrequenciesOpt(gs, n, Options{TieBreak: TieSmallestR})
	if err != nil {
		t.Fatal(err)
	}
	if def[0] != 4 {
		t.Errorf("TieTowardRatio S_1 = %d, want 4 (SUSC frequency)", def[0])
	}
	if lit[0] >= def[0] {
		t.Errorf("TieSmallestR S_1 = %d, want < %d", lit[0], def[0])
	}
	if err := lit.Validate(gs); err != nil {
		t.Errorf("literal frequencies invalid: %v", err)
	}
}
