package pamad

import (
	"math/rand"
	"testing"

	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
)

// progsEqual compares two programs cell for cell.
func progsEqual(t *testing.T, got, want *core.Program) {
	t.Helper()
	if got.Channels() != want.Channels() || got.Length() != want.Length() {
		t.Fatalf("grid shape %dx%d, want %dx%d",
			got.Channels(), got.Length(), want.Channels(), want.Length())
	}
	if got.Filled() != want.Filled() {
		t.Fatalf("Filled = %d, want %d", got.Filled(), want.Filled())
	}
	for ch := 0; ch < want.Channels(); ch++ {
		for slot := 0; slot < want.Length(); slot++ {
			if got.At(ch, slot) != want.At(ch, slot) {
				t.Fatalf("cell (%d,%d) = %d, want %d\nfast:\n%s\nreference:\n%s",
					ch, slot, got.At(ch, slot), want.At(ch, slot), got, want)
			}
		}
	}
}

// TestPlaceEvenlyMatchesReference pins the chain-skipping placement
// byte-for-byte (grids and stats) against the literal Algorithm 4 scans on
// randomized instances across tight and roomy channel budgets.
func TestPlaceEvenlyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		gs := randomGroupSet(rng)
		nReal := 1 + rng.Intn(12)
		s, _, err := Frequencies(gs, nReal)
		if err != nil {
			t.Fatalf("Frequencies(%v, %d): %v", gs, nReal, err)
		}
		fast, fastStats, err := PlaceEvenly(gs, s, nReal)
		if err != nil {
			t.Fatalf("PlaceEvenly(%v, %v, %d): %v", gs, s, nReal, err)
		}
		ref, refStats, err := placeEvenlyReference(gs, s, nReal)
		if err != nil {
			t.Fatalf("placeEvenlyReference(%v, %v, %d): %v", gs, s, nReal, err)
		}
		progsEqual(t, fast, ref)
		if fastStats != refStats {
			t.Fatalf("stats = %+v, want %+v (gs=%v, s=%v, n=%d)", fastStats, refStats, gs, s, nReal)
		}
	}
}

// TestColChainFind exercises the union-find successor chain directly:
// saturating columns re-routes find past them, with the sentinel root
// reported when everything at or after the query is full.
func TestColChainFind(t *testing.T) {
	cc := newColChain(5)
	if got := cc.find(2); got != 2 {
		t.Errorf("find(2) = %d, want 2 (all free)", got)
	}
	cc.markFull(2)
	cc.markFull(3)
	if got := cc.find(2); got != 4 {
		t.Errorf("find(2) = %d, want 4 after filling 2,3", got)
	}
	cc.markFull(4)
	if got := cc.find(2); got != 5 {
		t.Errorf("find(2) = %d, want sentinel 5 after filling 2..4", got)
	}
	if got := cc.find(0); got != 0 {
		t.Errorf("find(0) = %d, want 0 (still free)", got)
	}
	cc.markFull(0)
	cc.markFull(1)
	if got := cc.find(0); got != 5 {
		t.Errorf("find(0) = %d, want sentinel 5 with every column full", got)
	}
}

// TestFindFreeColumnCyclicWrap covers the wrap path of the overflow-reset
// scan: starting at or past the last column must continue from column 0.
func TestFindFreeColumnCyclicWrap(t *testing.T) {
	free := []int{0, 2, 0, 0}
	if col, ok := findFreeColumnCyclic(free, 2, 4); !ok || col != 1 {
		t.Errorf("from=2: (%d,%v), want (1,true) via wrap", col, ok)
	}
	if col, ok := findFreeColumnCyclic(free, 4, 4); !ok || col != 1 {
		t.Errorf("from=t_major: (%d,%v), want (1,true) — overflow reset before first probe", col, ok)
	}
	if col, ok := findFreeColumnCyclic([]int{0, 0}, 1, 2); ok {
		t.Errorf("all-full scan returned column %d, want not found", col)
	}
	if col, ok := findFreeColumnCyclic(free, 1, 4); !ok || col != 1 {
		t.Errorf("from=1: (%d,%v), want (1,true) without wrapping", col, ok)
	}
}

// TestPlaceEvenlySpillEquivalence forces the spill path (scarce channels,
// frequencies that crowd the early windows) and checks fast and reference
// placements still agree, including the Spills counter.
func TestPlaceEvenlySpillEquivalence(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 3}, {Time: 4, Count: 5}, {Time: 8, Count: 3}})
	for nReal := 1; nReal <= 4; nReal++ {
		s, _, err := Frequencies(gs, nReal)
		if err != nil {
			t.Fatal(err)
		}
		fast, fastStats, err := PlaceEvenly(gs, s, nReal)
		if err != nil {
			t.Fatal(err)
		}
		ref, refStats, err := placeEvenlyReference(gs, s, nReal)
		if err != nil {
			t.Fatal(err)
		}
		progsEqual(t, fast, ref)
		if fastStats != refStats {
			t.Fatalf("n=%d: stats = %+v, want %+v", nReal, fastStats, refStats)
		}
	}
}

// TestPlaceEvenlySpreadsManualFrequencies drives PlaceEvenly with a
// hand-picked frequency vector (not one Frequencies would emit) so the
// window geometry differs from the optimizer's choices.
func TestPlaceEvenlySpreadsManualFrequencies(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 2}, {Time: 8, Count: 6}})
	s := delaymodel.Frequencies{6, 2}
	fast, fastStats, err := PlaceEvenly(gs, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref, refStats, err := placeEvenlyReference(gs, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	progsEqual(t, fast, ref)
	if fastStats != refStats {
		t.Fatalf("stats = %+v, want %+v", fastStats, refStats)
	}
}
