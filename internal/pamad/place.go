package pamad

import (
	"fmt"
	"sort"

	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
)

// PlacementStats reports how faithfully Algorithm 4 realised the even
// spread.
type PlacementStats struct {
	// Spills counts placements that did not fit anywhere inside their
	// preferred window [ceil(t_major*k/S), ceil(t_major*(k+1)/S)) and had
	// to continue scanning cyclically past it. The paper argues the window
	// always has room; the counter makes that claim observable.
	Spills int
	// EmptySlots is the number of unused grid cells (N*t_major - F).
	EmptySlots int
}

// colChain is a path-compressed union-find over columns answering "first
// column >= c with a free cell" in near-O(1) amortized time. chain[c] points
// toward that column; a free column is its own root. Index tMajor is a
// sentinel root meaning "no free column at or after c". When a column
// saturates it is linked to its successor, so repeated scans never re-walk
// full columns — this replaces the linear window and spill scans of the
// literal Algorithm 4 (retained in placeEvenlyReference).
type colChain []int32

func newColChain(tMajor int) colChain {
	cc := make(colChain, tMajor+1)
	for i := range cc {
		cc[i] = int32(i)
	}
	return cc
}

// find returns the first free column >= c, or len(cc)-1 (the sentinel) when
// every column at or after c is full.
func (cc colChain) find(c int) int {
	root := c
	for int(cc[root]) != root {
		root = int(cc[root])
	}
	for int(cc[c]) != root {
		c, cc[c] = int(cc[c]), int32(root)
	}
	return root
}

// markFull links a saturated column to its successor.
func (cc colChain) markFull(c int) {
	cc[c] = int32(c + 1)
}

// PlaceEvenly is Algorithm 4 of the paper: given per-group broadcast
// frequencies, build the broadcast program that spreads every page's S_i
// appearances evenly over the major cycle. Pages are placed in descending
// frequency order; each appearance k targets the window
// [ceil(t_major*k/S_i), ceil(t_major*(k+1)/S_i)) and takes the first free
// channel slot, column-major. If the window is exhausted the scan continues
// cyclically (counted in PlacementStats.Spills); a free slot always exists
// because t_major was sized to hold all F transmissions.
//
// The implementation derives the target channel arithmetically — columns
// fill bottom-up and cells are never cleared, so the first empty channel of
// column c is exactly nReal - freeInCol[c] — and skips saturated columns
// through a union-find successor chain, making each placement O(α(t_major))
// amortized instead of O(window + N). placeEvenlyReference retains the
// literal scanning algorithm; the package differential tests and
// FuzzPAMADPlacement pin the two cell for cell.
//
// The same placement routine serves both PAMAD and the m-PB baseline, as in
// the paper's experimental setup ("assignment of data to multiple channels
// is the same as that of the PAMAD algorithm once the broadcast frequency
// is determined").
func PlaceEvenly(gs *core.GroupSet, s delaymodel.Frequencies, nReal int) (*core.Program, PlacementStats, error) {
	var stats PlacementStats
	if err := s.Validate(gs); err != nil {
		return nil, stats, err
	}
	if nReal < 1 {
		return nil, stats, fmt.Errorf("%w: %d channels", core.ErrInsufficientChannels, nReal)
	}
	tMajor := s.MajorCycle(gs, nReal)
	prog, err := core.NewProgram(gs, nReal, tMajor)
	if err != nil {
		return nil, stats, err
	}

	// freeInCol[c] tracks how many empty cells column c still has; the
	// chain answers "first non-saturated column >= c" without scanning.
	freeInCol := make([]int, tMajor)
	for c := range freeInCol {
		freeInCol[c] = nReal
	}
	chain := newColChain(tMajor)

	// Descending frequency order; ties resolved by group order (ascending
	// expected time), preserving the paper's sort stability.
	order := make([]int, gs.Len())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return s[order[a]] > s[order[b]] })

	for _, gi := range order {
		if err := placeGroupPages(prog, gs, s, gi, tMajor, nReal, chain, freeInCol, &stats, nil); err != nil {
			return nil, stats, err
		}
	}
	stats.EmptySlots = nReal*tMajor - prog.Filled()
	return prog, stats, nil
}

// placeGroupPages runs the Algorithm 4 inner loop for every page of group
// gi against the live chain/freeInCol state, optionally recording each
// placement into cells. It is the one placement loop shared by PlaceEvenly,
// the incremental Placer's full build, and the Placer's suffix replay — the
// bit-identity of incremental rebuilds rests on all three walking exactly
// this code.
func placeGroupPages(prog *core.Program, gs *core.GroupSet, s delaymodel.Frequencies, gi, tMajor, nReal int, chain colChain, freeInCol []int, stats *PlacementStats, cells *[]Cell) error {
	g := gs.Group(gi)
	si := s[gi]
	for j := 0; j < g.Count; j++ {
		id := gs.PageAt(gi, j)
		for k := 0; k < si; k++ {
			start := core.CeilDiv(tMajor*k, si)
			end := core.CeilDiv(tMajor*(k+1), si)
			col := chain.find(start)
			if col >= end {
				// Nothing free inside the window: spill cyclically from
				// its end. end <= t_major (k < S_i), and wrapping to
				// find(0) matches the cyclic scan because when every
				// column >= end is full the first free column overall
				// precedes end.
				stats.Spills++
				col = chain.find(end)
				if col == tMajor {
					col = chain.find(0)
				}
				if col == tMajor {
					return fmt.Errorf(
						"pamad: no free slot for page %d appearance %d/%d (t_major=%d, F=%d, N=%d)",
						id, k+1, si, tMajor, s.TotalSlots(gs), nReal)
				}
			}
			// Columns fill bottom-up and are never cleared, so the first
			// empty channel is determined by the fill count alone.
			ch := nReal - freeInCol[col]
			if err := prog.Place(ch, col, id); err != nil {
				return err
			}
			if cells != nil {
				*cells = append(*cells, Cell{Channel: int32(ch), Column: int32(col)})
			}
			freeInCol[col]--
			if freeInCol[col] == 0 {
				chain.markFull(col)
			}
		}
	}
	return nil
}

// findFreeColumn returns the first column in [start, end) with a free cell.
func findFreeColumn(freeInCol []int, start, end int) (int, bool) {
	for c := start; c < end && c < len(freeInCol); c++ {
		if freeInCol[c] > 0 {
			return c, true
		}
	}
	return 0, false
}

// findFreeColumnCyclic scans from column `from` wrapping around the cycle.
// The wrap uses an overflow reset instead of a `%` per probe.
func findFreeColumnCyclic(freeInCol []int, from, tMajor int) (int, bool) {
	c := from
	if c >= tMajor {
		c -= tMajor
	}
	for step := 0; step < tMajor; step++ {
		if freeInCol[c] > 0 {
			return c, true
		}
		c++
		if c == tMajor {
			c = 0
		}
	}
	return 0, false
}

// placeInColumn puts id in the first empty channel of column col.
func placeInColumn(prog *core.Program, col int, id core.PageID) error {
	for ch := 0; ch < prog.Channels(); ch++ {
		if prog.At(ch, col) == core.None {
			return prog.Place(ch, col, id)
		}
	}
	return fmt.Errorf("%w: column %d unexpectedly full", core.ErrSlotOccupied, col)
}
