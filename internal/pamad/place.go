package pamad

import (
	"fmt"
	"sort"

	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
)

// PlacementStats reports how faithfully Algorithm 4 realised the even
// spread.
type PlacementStats struct {
	// Spills counts placements that did not fit anywhere inside their
	// preferred window [ceil(t_major*k/S), ceil(t_major*(k+1)/S)) and had
	// to continue scanning cyclically past it. The paper argues the window
	// always has room; the counter makes that claim observable.
	Spills int
	// EmptySlots is the number of unused grid cells (N*t_major - F).
	EmptySlots int
}

// PlaceEvenly is Algorithm 4 of the paper: given per-group broadcast
// frequencies, build the broadcast program that spreads every page's S_i
// appearances evenly over the major cycle. Pages are placed in descending
// frequency order; each appearance k targets the window
// [ceil(t_major*k/S_i), ceil(t_major*(k+1)/S_i)) and takes the first free
// channel slot, column-major. If the window is exhausted the scan continues
// cyclically (counted in PlacementStats.Spills); a free slot always exists
// because t_major was sized to hold all F transmissions.
//
// The same placement routine serves both PAMAD and the m-PB baseline, as in
// the paper's experimental setup ("assignment of data to multiple channels
// is the same as that of the PAMAD algorithm once the broadcast frequency
// is determined").
func PlaceEvenly(gs *core.GroupSet, s delaymodel.Frequencies, nReal int) (*core.Program, PlacementStats, error) {
	var stats PlacementStats
	if err := s.Validate(gs); err != nil {
		return nil, stats, err
	}
	if nReal < 1 {
		return nil, stats, fmt.Errorf("%w: %d channels", core.ErrInsufficientChannels, nReal)
	}
	tMajor := s.MajorCycle(gs, nReal)
	prog, err := core.NewProgram(gs, nReal, tMajor)
	if err != nil {
		return nil, stats, err
	}

	// freeInCol[c] tracks how many empty cells column c still has, so the
	// spill scan can skip saturated columns in O(1) per column.
	freeInCol := make([]int, tMajor)
	for c := range freeInCol {
		freeInCol[c] = nReal
	}

	// Descending frequency order; ties resolved by group order (ascending
	// expected time), preserving the paper's sort stability.
	order := make([]int, gs.Len())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return s[order[a]] > s[order[b]] })

	for _, gi := range order {
		g := gs.Group(gi)
		si := s[gi]
		for j := 0; j < g.Count; j++ {
			id := gs.PageAt(gi, j)
			for k := 0; k < si; k++ {
				start := core.CeilDiv(tMajor*k, si)
				end := core.CeilDiv(tMajor*(k+1), si)
				col, ok := findFreeColumn(freeInCol, start, end)
				if !ok {
					stats.Spills++
					col, ok = findFreeColumnCyclic(freeInCol, end, tMajor)
					if !ok {
						return nil, stats, fmt.Errorf(
							"pamad: no free slot for page %d appearance %d/%d (t_major=%d, F=%d, N=%d)",
							id, k+1, si, tMajor, s.TotalSlots(gs), nReal)
					}
				}
				if err := placeInColumn(prog, col, id); err != nil {
					return nil, stats, err
				}
				freeInCol[col]--
			}
		}
	}
	stats.EmptySlots = nReal*tMajor - prog.Filled()
	return prog, stats, nil
}

// findFreeColumn returns the first column in [start, end) with a free cell.
func findFreeColumn(freeInCol []int, start, end int) (int, bool) {
	for c := start; c < end && c < len(freeInCol); c++ {
		if freeInCol[c] > 0 {
			return c, true
		}
	}
	return 0, false
}

// findFreeColumnCyclic scans from column `from` wrapping around the cycle.
func findFreeColumnCyclic(freeInCol []int, from, tMajor int) (int, bool) {
	for step := 0; step < tMajor; step++ {
		c := (from + step) % tMajor
		if freeInCol[c] > 0 {
			return c, true
		}
	}
	return 0, false
}

// placeInColumn puts id in the first empty channel of column col.
func placeInColumn(prog *core.Program, col int, id core.PageID) error {
	for ch := 0; ch < prog.Channels(); ch++ {
		if prog.At(ch, col) == core.None {
			return prog.Place(ch, col, id)
		}
	}
	return fmt.Errorf("%w: column %d unexpectedly full", core.ErrSlotOccupied, col)
}
