package pamad

import (
	"fmt"
	"sort"

	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
)

// placeEvenlyReference is the literal Algorithm 4 placement that PlaceEvenly
// replaced: linear window scans, a cyclic spill scan, and a channel scan per
// appearance. It is retained verbatim as the differential oracle —
// TestPlaceEvenlyMatchesReference and FuzzPAMADPlacement pin PlaceEvenly's
// grids (and Spills counts) cell for cell against it.
func placeEvenlyReference(gs *core.GroupSet, s delaymodel.Frequencies, nReal int) (*core.Program, PlacementStats, error) {
	var stats PlacementStats
	if err := s.Validate(gs); err != nil {
		return nil, stats, err
	}
	if nReal < 1 {
		return nil, stats, fmt.Errorf("%w: %d channels", core.ErrInsufficientChannels, nReal)
	}
	tMajor := s.MajorCycle(gs, nReal)
	prog, err := core.NewProgram(gs, nReal, tMajor)
	if err != nil {
		return nil, stats, err
	}

	freeInCol := make([]int, tMajor)
	for c := range freeInCol {
		freeInCol[c] = nReal
	}

	order := make([]int, gs.Len())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return s[order[a]] > s[order[b]] })

	for _, gi := range order {
		g := gs.Group(gi)
		si := s[gi]
		for j := 0; j < g.Count; j++ {
			id := gs.PageAt(gi, j)
			for k := 0; k < si; k++ {
				start := core.CeilDiv(tMajor*k, si)
				end := core.CeilDiv(tMajor*(k+1), si)
				col, ok := findFreeColumn(freeInCol, start, end)
				if !ok {
					stats.Spills++
					col, ok = findFreeColumnCyclic(freeInCol, end, tMajor)
					if !ok {
						return nil, stats, fmt.Errorf(
							"pamad: no free slot for page %d appearance %d/%d (t_major=%d, F=%d, N=%d)",
							id, k+1, si, tMajor, s.TotalSlots(gs), nReal)
					}
				}
				if err := placeInColumn(prog, col, id); err != nil {
					return nil, stats, err
				}
				freeInCol[col]--
			}
		}
	}
	stats.EmptySlots = nReal*tMajor - prog.Filled()
	return prog, stats, nil
}
