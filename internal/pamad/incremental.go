package pamad

import (
	"fmt"

	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
)

// Cell addresses one grid cell a placement wrote: the unit of the replan
// engine's deltas.
type Cell struct {
	Channel int32
	Column  int32
}

// checkpoint snapshots the placement state at a group boundary. Restoring
// it and re-running placeGroupPages for the remaining groups reproduces a
// from-scratch placement bit for bit, because the prefix operations of a
// fresh run are identical to the ones that produced the snapshot.
type checkpoint struct {
	chain     colChain
	freeInCol []int
	spills    int
	cells     int // len(Placer.cells) at the boundary
}

// Placer is PlaceEvenly with persistent state: it retains the
// path-compressed union-find column chain, the per-column fill counts, a
// per-transmission placement log, and a snapshot of all three at every
// group boundary. That turns the placement into an incrementally editable
// structure: when an instance edit leaves groups 0..g-1, the frequency
// prefix S_1..S_g and t_major unchanged, the placements of those groups
// are bit-identical in a from-scratch rebuild (pages are placed in group
// order for divisor-chain frequencies, and IDs below group g do not
// shift), so ReplayFrom(g) — restore the group-g snapshot, clear the
// suffix cells, re-place groups g..h-1 — yields exactly the program
// PlaceEvenly would build for the edited instance, in O(suffix) work
// instead of O(F). AppendLast is the O(S_h) fast path for the most common
// edit of all: a page appended to the last group.
//
// A Placer is not safe for concurrent use; the replan engine serialises
// edits and hands out immutable program snapshots.
type Placer struct {
	gs     *core.GroupSet
	s      delaymodel.Frequencies
	nReal  int
	tMajor int
	prog   *core.Program
	stats  PlacementStats

	chain     colChain
	freeInCol []int
	cells     []Cell       // placement log, one entry per transmission
	marks     []checkpoint // marks[g] = state at the start of group g
}

// NewPlacer builds the program for (gs, s, nReal) with full checkpointing.
// The frequencies must be non-increasing (every divisor-chain vector is:
// S_i = S_{i+1}*r_i with r_i >= 1), which makes PlaceEvenly's
// descending-frequency stable sort the identity permutation — the property
// the per-group checkpoints rely on. Vectors outside that family are
// rejected; callers needing them use PlaceEvenly directly.
func NewPlacer(gs *core.GroupSet, s delaymodel.Frequencies, nReal int) (*Placer, error) {
	if err := s.Validate(gs); err != nil {
		return nil, err
	}
	if nReal < 1 {
		return nil, fmt.Errorf("%w: %d channels", core.ErrInsufficientChannels, nReal)
	}
	if err := requireNonIncreasing(s); err != nil {
		return nil, err
	}
	tMajor := s.MajorCycle(gs, nReal)
	prog, err := core.NewProgram(gs, nReal, tMajor)
	if err != nil {
		return nil, err
	}
	p := &Placer{
		gs:        gs,
		s:         s.Clone(),
		nReal:     nReal,
		tMajor:    tMajor,
		prog:      prog,
		chain:     newColChain(tMajor),
		freeInCol: make([]int, tMajor),
		cells:     make([]Cell, 0, s.TotalSlots(gs)),
		marks:     make([]checkpoint, 0, gs.Len()),
	}
	for c := range p.freeInCol {
		p.freeInCol[c] = nReal
	}
	if err := p.placeFrom(0); err != nil {
		return nil, err
	}
	return p, nil
}

// requireNonIncreasing rejects frequency vectors whose placement order is
// not the group order.
func requireNonIncreasing(s delaymodel.Frequencies) error {
	for i := 1; i < len(s); i++ {
		if s[i] > s[i-1] {
			return fmt.Errorf("%w: S_%d=%d > S_%d=%d — incremental placement requires the non-increasing divisor-chain order",
				core.ErrInvalidGroupSet, i+1, s[i], i, s[i-1])
		}
	}
	return nil
}

// placeFrom places groups g..h-1 against the live state, snapshotting each
// group boundary as it crosses it.
func (p *Placer) placeFrom(g int) error {
	p.marks = p.marks[:g]
	for gi := g; gi < p.gs.Len(); gi++ {
		p.marks = append(p.marks, p.snapshot())
		if err := placeGroupPages(p.prog, p.gs, p.s, gi, p.tMajor, p.nReal, p.chain, p.freeInCol, &p.stats, &p.cells); err != nil {
			return err
		}
	}
	p.stats.EmptySlots = p.nReal*p.tMajor - p.prog.Filled()
	return nil
}

// snapshot copies the live placement state.
func (p *Placer) snapshot() checkpoint {
	return checkpoint{
		chain:     append(colChain(nil), p.chain...),
		freeInCol: append([]int(nil), p.freeInCol...),
		spills:    p.stats.Spills,
		cells:     len(p.cells),
	}
}

// Program returns the live program. The replan engine clones it before
// publishing; the Placer keeps mutating this instance.
func (p *Placer) Program() *core.Program { return p.prog }

// GroupSet returns the instance currently placed.
func (p *Placer) GroupSet() *core.GroupSet { return p.gs }

// Frequencies returns the frequency vector currently placed.
func (p *Placer) Frequencies() delaymodel.Frequencies { return p.s }

// Stats returns the placement accounting, identical to what PlaceEvenly
// would report for the current instance.
func (p *Placer) Stats() PlacementStats { return p.stats }

// MajorCycle returns t_major, the fixed column count of the live grid.
func (p *Placer) MajorCycle() int { return p.tMajor }

// Channels returns the channel budget the placement was built for.
func (p *Placer) Channels() int { return p.nReal }

// SuffixCells returns the placement-log entries of groups g..h-1: the
// cells a ReplayFrom(g) would clear, in placement order (groups ascending,
// pages ascending within a group, appearances k=0..S_i-1 per page).
func (p *Placer) SuffixCells(g int) []Cell {
	if g < 0 || g >= len(p.marks) {
		return nil
	}
	return p.cells[p.marks[g].cells:]
}

// ReplayFrom rebinds the placement to the edited instance (gsNew, sNew) by
// restoring the group-g checkpoint, clearing every cell groups >= g had
// placed, and re-running the placement loop for groups g..h-1 of the new
// instance. The caller guarantees the edit preserved groups 0..g-1, the
// frequency prefix S_1..S_g, the channel budget's t_major, and the
// non-increasing frequency order; ReplayFrom verifies all four and refuses
// otherwise. On success the live program is bit-identical to
// PlaceEvenly(gsNew, sNew, nReal), and the returned slice logs the cells
// the replay wrote (the cleared set is SuffixCells(g) taken before the
// call).
func (p *Placer) ReplayFrom(g int, gsNew *core.GroupSet, sNew delaymodel.Frequencies) ([]Cell, error) {
	if err := sNew.Validate(gsNew); err != nil {
		return nil, err
	}
	if err := requireNonIncreasing(sNew); err != nil {
		return nil, err
	}
	if g < 0 || g > gsNew.Len() || g > p.gs.Len() {
		return nil, fmt.Errorf("%w: replay from group %d of %d", core.ErrInvalidGroupSet, g+1, gsNew.Len())
	}
	for i := 0; i < g; i++ {
		if p.gs.Group(i) != gsNew.Group(i) || p.s[i] != sNew[i] {
			return nil, fmt.Errorf("%w: group %d changed below the replay point", core.ErrInvalidGroupSet, i+1)
		}
	}
	if tm := sNew.MajorCycle(gsNew, p.nReal); tm != p.tMajor {
		return nil, fmt.Errorf("%w: edit moves t_major %d -> %d; replay requires a full rebuild",
			core.ErrInvalidGroupSet, p.tMajor, tm)
	}
	if g == gsNew.Len() && g == p.gs.Len() {
		// Nothing below h changed and there is no suffix: the edit was a
		// no-op for the placement.
		p.gs, p.s = gsNew, sNew.Clone()
		if err := p.prog.Rebind(gsNew); err != nil {
			return nil, err
		}
		return nil, nil
	}
	if g >= len(p.marks) {
		return nil, fmt.Errorf("%w: no checkpoint for group %d", core.ErrInvalidGroupSet, g+1)
	}

	// Restore the boundary state and vacate the suffix cells. The cells
	// cleared are exactly the ones placed after the checkpoint, so every
	// column drops back to its checkpointed bottom-up fill.
	mark := &p.marks[g]
	copy(p.chain, mark.chain)
	copy(p.freeInCol, mark.freeInCol)
	p.stats.Spills = mark.spills
	for _, c := range p.cells[mark.cells:] {
		p.prog.Clear(int(c.Channel), int(c.Column))
	}
	p.cells = p.cells[:mark.cells]

	// The prefix cells' page IDs are identical under the new instance
	// (groups below g are unchanged and IDs are dense group-by-group), so
	// the grid rebinds verbatim.
	p.gs, p.s = gsNew, sNew.Clone()
	if err := p.prog.Rebind(gsNew); err != nil {
		return nil, err
	}
	start := len(p.cells)
	if err := p.placeFrom(g); err != nil {
		return nil, err
	}
	return p.cells[start:], nil
}

// AppendLast is the O(S_h) fast path for appending one page to the last
// group when the edit left the frequency vector and t_major unchanged: the
// new page's ID is n, placed after every existing page, so its appearances
// extend the original placement run against the live chain with no replay
// at all. It returns the cells the new page occupies.
func (p *Placer) AppendLast(gsNew *core.GroupSet) ([]Cell, error) {
	h := p.gs.Len()
	if gsNew.Len() != h {
		return nil, fmt.Errorf("%w: append changed group count %d -> %d", core.ErrInvalidGroupSet, h, gsNew.Len())
	}
	for i := 0; i < h-1; i++ {
		if p.gs.Group(i) != gsNew.Group(i) {
			return nil, fmt.Errorf("%w: group %d changed in append", core.ErrInvalidGroupSet, i+1)
		}
	}
	last, lastNew := p.gs.Group(h-1), gsNew.Group(h-1)
	if lastNew.Time != last.Time || lastNew.Count != last.Count+1 {
		return nil, fmt.Errorf("%w: append expects last group count %d+1 at time %d, got {t=%d P=%d}",
			core.ErrInvalidGroupSet, last.Count, last.Time, lastNew.Time, lastNew.Count)
	}
	if tm := p.s.MajorCycle(gsNew, p.nReal); tm != p.tMajor {
		return nil, fmt.Errorf("%w: append moves t_major %d -> %d; replay required",
			core.ErrInvalidGroupSet, p.tMajor, tm)
	}
	if err := p.prog.Rebind(gsNew); err != nil {
		return nil, err
	}
	p.gs = gsNew
	start := len(p.cells)
	if err := placeOnePage(p.prog, gsNew, p.s, h-1, lastNew.Count-1, p.tMajor, p.nReal, p.chain, p.freeInCol, &p.stats, &p.cells); err != nil {
		return nil, err
	}
	p.stats.EmptySlots = p.nReal*p.tMajor - p.prog.Filled()
	return p.cells[start:], nil
}

// placeOnePage places the j-th page of group gi — the single-page slice of
// placeGroupPages, kept textually in lockstep with it so the append fast
// path stays bit-identical to the full loop's treatment of the same page.
func placeOnePage(prog *core.Program, gs *core.GroupSet, s delaymodel.Frequencies, gi, j, tMajor, nReal int, chain colChain, freeInCol []int, stats *PlacementStats, cells *[]Cell) error {
	si := s[gi]
	id := gs.PageAt(gi, j)
	for k := 0; k < si; k++ {
		start := core.CeilDiv(tMajor*k, si)
		end := core.CeilDiv(tMajor*(k+1), si)
		col := chain.find(start)
		if col >= end {
			stats.Spills++
			col = chain.find(end)
			if col == tMajor {
				col = chain.find(0)
			}
			if col == tMajor {
				return fmt.Errorf(
					"pamad: no free slot for page %d appearance %d/%d (t_major=%d, F=%d, N=%d)",
					id, k+1, si, tMajor, s.TotalSlots(gs), nReal)
			}
		}
		ch := nReal - freeInCol[col]
		if err := prog.Place(ch, col, id); err != nil {
			return err
		}
		if cells != nil {
			*cells = append(*cells, Cell{Channel: int32(ch), Column: int32(col)})
		}
		freeInCol[col]--
		if freeInCol[col] == 0 {
			chain.markFull(col)
		}
	}
	return nil
}
