package pamad

import (
	"testing"

	"tcsa/internal/core"
	"tcsa/internal/susc"
)

// FuzzPAMADPlacement drives arbitrary group shapes and channel budgets
// through the full PAMAD pipeline (Algorithm 3 + 4) and asserts the
// placement invariants: Build never fails on a valid instance, every page
// is placed exactly S_i times, the grid bookkeeping is consistent, the
// chain-skipping PlaceEvenly matches the retained literal Algorithm 4
// reference cell for cell, and in the sufficient-channel regime the SUSC
// program for the same instance is valid (Theorem 3.1).
func FuzzPAMADPlacement(f *testing.F) {
	f.Add(2, 2, uint8(3), uint8(5), uint8(3), 3) // Figure 2, one channel short
	f.Add(2, 2, uint8(3), uint8(5), uint8(3), 4) // Figure 2 at the Theorem 3.1 minimum
	f.Add(1, 3, uint8(1), uint8(0), uint8(9), 1)
	f.Add(5, 4, uint8(40), uint8(1), uint8(200), 2)
	f.Add(64, 8, uint8(255), uint8(255), uint8(255), 16)
	f.Fuzz(func(t *testing.T, t1, c int, p1, p2, p3 uint8, nReal int) {
		// Bound the shape so a single case stays fast; Geometric rejects
		// the remaining invalid inputs itself.
		if t1 > 64 || c > 8 || nReal < 1 || nReal > 16 {
			return
		}
		var counts []int
		for _, p := range []uint8{p1, p2, p3} {
			if p > 0 {
				counts = append(counts, int(p))
			}
		}
		if len(counts) == 0 {
			return
		}
		gs, err := core.Geometric(t1, c, counts)
		if err != nil {
			return
		}
		prog, res, err := Build(gs, nReal)
		if err != nil {
			t.Fatalf("Build(%v, %d): %v", gs, nReal, err)
		}
		s := res.Frequencies
		if len(s) != gs.Len() {
			t.Fatalf("%d frequencies for %d groups", len(s), gs.Len())
		}
		if prog.Channels() != nReal || prog.Length() != res.MajorCycle {
			t.Fatalf("program %dx%d, want %dx%d", prog.Channels(), prog.Length(), nReal, res.MajorCycle)
		}
		if got, want := prog.Filled(), s.TotalSlots(gs); got != want {
			t.Fatalf("filled %d cells, want F=%d", got, want)
		}
		for gi := 0; gi < gs.Len(); gi++ {
			if s[gi] < 1 {
				t.Fatalf("S_%d = %d < 1", gi+1, s[gi])
			}
			first, count := gs.GroupPages(gi)
			for j := 0; j < count; j++ {
				id := first + core.PageID(j)
				if got := prog.CountOf(id); got != s[gi] {
					t.Fatalf("page %d placed %d times, want S_%d=%d (gs=%v, n=%d)",
						id, got, gi+1, s[gi], gs, nReal)
				}
			}
		}
		ref, _, err := placeEvenlyReference(gs, s, nReal)
		if err != nil {
			t.Fatalf("placeEvenlyReference(%v, %v, %d): %v", gs, s, nReal, err)
		}
		if prog.Filled() != ref.Filled() {
			t.Fatalf("fast Filled %d, reference %d", prog.Filled(), ref.Filled())
		}
		for ch := 0; ch < nReal; ch++ {
			for slot := 0; slot < res.MajorCycle; slot++ {
				if prog.At(ch, slot) != ref.At(ch, slot) {
					t.Fatalf("cell (%d,%d) = %d, reference %d (gs=%v, s=%v, n=%d)",
						ch, slot, prog.At(ch, slot), ref.At(ch, slot), gs, s, nReal)
				}
			}
		}
		if gs.SufficientFor(nReal) {
			sp, err := susc.Build(gs, nReal)
			if err != nil {
				t.Fatalf("susc.Build(%v, %d): %v", gs, nReal, err)
			}
			if err := sp.Validate(); err != nil {
				t.Fatalf("SUSC program invalid at %d >= MinChannels=%d channels: %v",
					nReal, gs.MinChannels(), err)
			}
		}
	})
}
