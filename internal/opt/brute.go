package opt

import (
	"context"
	"fmt"

	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
	"tcsa/internal/pamad"
)

// BruteForce enumerates every non-increasing frequency vector with
// 1 <= S_i <= maxS[i] and S_h = 1 — a strict superset of the divisor-chain
// family Search explores — and returns the delay-minimal one. Cost is
// exponential in the group count; intended for small validation instances
// only (the package tests use it to bound the cost of the divisor-chain
// restriction). maxS entries < 1 default to t_h/t_i, the zero-delay
// frequency.
func BruteForce(ctx context.Context, gs *core.GroupSet, nReal int, maxS []int) (*Result, error) {
	if gs == nil {
		return nil, fmt.Errorf("%w: nil group set", core.ErrInvalidGroupSet)
	}
	if nReal < 1 {
		return nil, fmt.Errorf("%w: %d channels", core.ErrInsufficientChannels, nReal)
	}
	h := gs.Len()
	limits := make([]int, h)
	th := gs.MaxTime()
	for i := 0; i < h; i++ {
		if maxS != nil && i < len(maxS) && maxS[i] >= 1 {
			limits[i] = maxS[i]
		} else {
			limits[i] = th / gs.Group(i).Time
		}
	}

	best := &Result{Delay: -1}
	s := make(delaymodel.Frequencies, h)
	s[h-1] = 1
	var rec func(i int) error
	rec = func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if i < 0 {
			d := delaymodel.GroupDelay(gs, s, nReal)
			best.Evaluated++
			cand := &Result{Frequencies: s, Delay: d}
			if best.Delay < 0 || betterResult(gs, cand, best) {
				best.Frequencies = s.Clone()
				best.Delay = d
			}
			return nil
		}
		// Non-increasing: S_i >= S_{i+1}.
		lo := 1
		if i < h-1 {
			lo = s[i+1]
		}
		for v := lo; v <= limits[i] || v == lo; v++ {
			s[i] = v
			if err := rec(i - 1); err != nil {
				return err
			}
		}
		return nil
	}
	// rec(-1) handles h == 1 directly: it scores the fixed S = (1) vector.
	if err := rec(h - 2); err != nil {
		return nil, err
	}
	return best, nil
}

// Build runs Search and materialises the winning frequencies into a
// broadcast program using the same Algorithm 4 placement as PAMAD and m-PB,
// keeping the three comparators' placement identical as in the paper.
func Build(ctx context.Context, gs *core.GroupSet, nReal int, opts Options) (*core.Program, *Result, error) {
	res, err := Search(ctx, gs, nReal, opts)
	if err != nil {
		return nil, nil, err
	}
	prog, _, err := pamad.PlaceEvenly(gs, res.Frequencies, nReal)
	if err != nil {
		return nil, nil, err
	}
	return prog, res, nil
}
