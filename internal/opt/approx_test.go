package opt

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"tcsa/internal/conformance"
	"tcsa/internal/core"
)

// TestApproxDifferentialSmall pins the PTAS against branch-and-bound on
// every random instance B&B can finish: the returned vector must be a
// family member with delay within (1+ε) of the exact optimum. These
// families sit under the exact-scan limit, so the bound holds with ratio
// exactly 1 — the assertions check both.
func TestApproxDifferentialSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ctx := context.Background()
	for trial := 0; trial < 60; trial++ {
		gs := randomGroupSet(rng, 4)
		nReal := 1 + rng.Intn(gs.MinChannels())
		sres, err := Search(ctx, gs, nReal, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0.05, 0.1} {
			ares, err := Approx(ctx, gs, nReal, ApproxOptions{Eps: eps})
			if err != nil {
				t.Fatal(err)
			}
			if err := conformance.DivisorChainFamily(gs, ares.Frequencies); err != nil {
				t.Fatalf("instance %v N=%d: %v", gs, nReal, err)
			}
			if ares.Delay > sres.Delay*(1+eps)+1e-12 {
				t.Fatalf("instance %v N=%d eps=%v: approx %v > (1+ε)·opt %v (S=%v vs %v)",
					gs, nReal, eps, ares.Delay, sres.Delay, ares.Frequencies, sres.Frequencies)
			}
			if ares.Delay != sres.Delay {
				t.Errorf("instance %v N=%d: exact-regime approx %v != opt %v",
					gs, nReal, ares.Delay, sres.Delay)
			}
		}
	}
}

// TestApproxDifferentialWide exercises the genuinely approximate path —
// grid merging active — on wide paper-shaped instances where Search's
// branch-and-bound still finishes, at several channel budgets across the
// delay regime. This is the load-bearing (1+ε) gate.
func TestApproxDifferentialWide(t *testing.T) {
	ctx := context.Background()
	for _, h := range []int{8, 10, 12} {
		gs := paperUniformH(125, h)
		min := gs.MinChannels()
		for _, nReal := range []int{1 + min/10, 1 + min/5, 1 + min/2} {
			sres, err := Search(ctx, gs, nReal, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, eps := range []float64{0.05, 0.1, 0.25} {
				ares, err := Approx(ctx, gs, nReal, ApproxOptions{Eps: eps})
				if err != nil {
					t.Fatal(err)
				}
				if err := conformance.DivisorChainFamily(gs, ares.Frequencies); err != nil {
					t.Fatalf("h=%d N=%d: %v", h, nReal, err)
				}
				if ares.Delay > sres.Delay*(1+eps)+1e-12 {
					t.Errorf("h=%d N=%d eps=%v: approx %v > (1+ε)·opt %v (S=%v vs %v)",
						h, nReal, eps, ares.Delay, sres.Delay, ares.Frequencies, sres.Frequencies)
				} else if sres.Delay > 0 {
					t.Logf("h=%d N=%d eps=%.2f: ratio %.6f (%d vs %d evaluations)",
						h, nReal, eps, ares.Delay/sres.Delay, ares.Evaluated, sres.Evaluated)
				}
			}
		}
	}
}

// TestApproxParallelismBitIdentical: the acceptance criterion's 1/4/8
// worker sweep — frequencies, delay and Evaluated all pinned.
func TestApproxParallelismBitIdentical(t *testing.T) {
	ctx := context.Background()
	gs := paperUniformH(125, 10)
	base, err := Approx(ctx, gs, 15, ApproxOptions{Eps: 0.1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{4, 8} {
		res, err := Approx(ctx, gs, 15, ApproxOptions{Eps: 0.1, Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if res.Delay != base.Delay || res.Evaluated != base.Evaluated {
			t.Errorf("parallelism %d: (delay, evaluated) = (%v, %d), want (%v, %d)",
				par, res.Delay, res.Evaluated, base.Delay, base.Evaluated)
		}
		for i := range base.Frequencies {
			if res.Frequencies[i] != base.Frequencies[i] {
				t.Errorf("parallelism %d: %v != %v", par, res.Frequencies, base.Frequencies)
				break
			}
		}
	}
}

func TestApproxErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := Approx(ctx, nil, 3, ApproxOptions{}); err == nil {
		t.Error("nil group set accepted")
	}
	if _, err := Approx(ctx, fig2(), 0, ApproxOptions{}); err == nil {
		t.Error("0 channels accepted")
	}
	if _, err := Approx(ctx, fig2(), 3, ApproxOptions{Eps: -1}); err == nil {
		t.Error("negative eps accepted")
	}
}

func TestApproxSingleGroup(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 4, Count: 10}})
	res, err := Approx(context.Background(), gs, 1, ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frequencies) != 1 || res.Frequencies[0] != 1 {
		t.Errorf("Frequencies = %v, want [1]", res.Frequencies)
	}
}

// TestApproxCancelledMidSearch mirrors Search's countdown-context gate: a
// context expiring partway through must surface as an error, never as a
// silently truncated result.
func TestApproxCancelledMidSearch(t *testing.T) {
	gs := paperUniformH(5, 8)
	full, err := Approx(context.Background(), gs, 10, ApproxOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	cancelledAtLeastOnce := false
	for calls := int64(1); calls <= 64; calls *= 2 {
		res, err := Approx(newCountdownCtx(calls), gs, 10, ApproxOptions{Parallelism: 1})
		if err == nil {
			if res.Evaluated != full.Evaluated || res.Delay != full.Delay {
				t.Fatalf("calls=%d: complete run diverged: %+v vs %+v", calls, res, full)
			}
			continue
		}
		cancelledAtLeastOnce = true
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("calls=%d: err = %v, want context.Canceled", calls, err)
		}
		if res != nil {
			t.Fatalf("calls=%d: truncated approx returned a result alongside the error", calls)
		}
	}
	if !cancelledAtLeastOnce {
		t.Fatal("countdown context never truncated the approx run — test exercised nothing")
	}
}

func TestApproxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Approx(ctx, fig2(), 3, ApproxOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("pre-cancelled approx returned a result")
	}
}

// TestBruteForceCancelledMidSearch closes the cancellation-coverage gap the
// Search countdown test left: BruteForce must also stop at the first Err
// and return no partial best.
func TestBruteForceCancelledMidSearch(t *testing.T) {
	gs := fig2()
	full, err := BruteForce(context.Background(), gs, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	cancelledAtLeastOnce := false
	for calls := int64(1); calls <= 32; calls *= 2 {
		res, err := BruteForce(newCountdownCtx(calls), gs, 3, nil)
		if err == nil {
			if res.Evaluated != full.Evaluated || res.Delay != full.Delay {
				t.Fatalf("calls=%d: complete run diverged: %+v vs %+v", calls, res, full)
			}
			continue
		}
		cancelledAtLeastOnce = true
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("calls=%d: err = %v, want context.Canceled", calls, err)
		}
		if res != nil {
			t.Fatalf("calls=%d: truncated brute force returned a result alongside the error", calls)
		}
	}
	if !cancelledAtLeastOnce {
		t.Fatal("countdown context never truncated the brute force — test exercised nothing")
	}
}

// TestBuildApproxProducesProgram: the approximate result feeds the same
// Algorithm 4 placement as Build and survives the spill-accounting oracle.
func TestBuildApproxProducesProgram(t *testing.T) {
	gs := fig2()
	prog, res, err := BuildApprox(context.Background(), gs, 3, ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if prog == nil || len(res.Frequencies) != gs.Len() {
		t.Fatalf("unexpected build output: prog=%v res=%+v", prog, res)
	}
	if err := conformance.DivisorChainFamily(gs, res.Frequencies); err != nil {
		t.Error(err)
	}
	if _, _, err := BuildApprox(context.Background(), nil, 3, ApproxOptions{}); err == nil {
		t.Error("BuildApprox nil group set accepted")
	}
}

// TestSeedVectorsDedup asserts the duplicate-seed elimination: on instances
// where PAMAD's clamped chain coincides with the clamped sufficient chain,
// Search must not pay a duplicate exact evaluation.
func TestSeedVectorsDedup(t *testing.T) {
	// At ample channels PAMAD picks the sufficient frequencies themselves,
	// so the two seeds coincide.
	gs := fig2()
	caps := factorCaps(gs, 0)
	seeds := seedVectors(gs, gs.MinChannels(), caps)
	if len(seeds) != 1 {
		t.Fatalf("seedVectors returned %d seeds %v, want the coinciding pair deduplicated to 1",
			len(seeds), seeds)
	}
	// Scarce channels drive PAMAD away from the sufficient chain: both
	// seeds must survive.
	seeds = seedVectors(gs, 1, caps)
	if len(seeds) != 2 {
		t.Fatalf("seedVectors returned %d seeds %v, want 2 distinct", len(seeds), seeds)
	}
	if equalFrequencies(seeds[0], seeds[1]) {
		t.Fatalf("distinct-seed case returned duplicates: %v", seeds)
	}
}

// paperUniformH is paperUniform widened to h groups.
func paperUniformH(per, h int) *core.GroupSet {
	groups := make([]core.Group, h)
	tt := 4
	for i := range groups {
		groups[i] = core.Group{Time: tt, Count: per}
		tt *= 2
	}
	return core.MustGroupSet(groups)
}
