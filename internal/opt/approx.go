package opt

import (
	"context"
	"fmt"

	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
	"tcsa/internal/pamad"
	"tcsa/internal/ptas"
)

// ApproxOptions tunes the approximate frequency search.
type ApproxOptions struct {
	// Eps is the approximation slack ε > 0: Approx targets an analytic
	// delay within (1+ε) of the best family member Search would return.
	// 0 means ptas.DefaultEps.
	Eps float64
	// MaxFactor caps each repetition factor exactly like Options.MaxFactor,
	// so Approx and Search explore the same family for a given value.
	MaxFactor int
	// Parallelism bounds concurrent scoring workers; 0 means GOMAXPROCS.
	// Unlike Search's Evaluated, Approx's result is bit-identical at any
	// parallelism including the evaluation count.
	Parallelism int
	// MaxStates caps the DP frontier per stage (memory safety valve);
	// 0 means ptas.DefaultMaxStates.
	MaxStates int
}

// Approx is the (1+ε) counterpart of Search for the large-h frontier where
// branch-and-bound is infeasible: it runs the internal/ptas grid dynamic
// program over the same divisor-chain family, seeded with the same clamped
// PAMAD and sufficient-frequency chains Search warms its incumbent with.
// On instances whose family is small enough for Search to finish, the
// engine scans the family outright and the two return identical vectors;
// beyond that the grid keeps only O(poly(1/ε)·polylog) structurally
// distinct chains per stage. The result is always a family member, so
// Build-style placement always accepts it.
func Approx(ctx context.Context, gs *core.GroupSet, nReal int, opts ApproxOptions) (*Result, error) {
	if gs == nil {
		return nil, fmt.Errorf("%w: nil group set", core.ErrInvalidGroupSet)
	}
	if nReal < 1 {
		return nil, fmt.Errorf("%w: %d channels", core.ErrInsufficientChannels, nReal)
	}
	if gs.Len() == 1 {
		return &Result{Frequencies: delaymodel.Frequencies{1}, Delay: delaymodel.GroupDelay(gs, delaymodel.Frequencies{1}, nReal), Evaluated: 1}, nil
	}
	caps := factorCaps(gs, opts.MaxFactor)
	res, err := ptas.Optimize(ctx, gs, nReal, ptas.Options{
		Eps:         opts.Eps,
		Caps:        caps,
		Parallelism: opts.Parallelism,
		MaxStates:   opts.MaxStates,
		Seeds:       seedVectors(gs, nReal, caps),
	})
	if err != nil {
		return nil, err
	}
	return &Result{Frequencies: res.Frequencies, Delay: res.Delay, Evaluated: res.Evaluated}, nil
}

// BuildApprox runs Approx and materialises the winning frequencies with the
// same Algorithm 4 placement as Build, so the approximate comparator's
// programs are placement-identical to the exact ones.
func BuildApprox(ctx context.Context, gs *core.GroupSet, nReal int, opts ApproxOptions) (*core.Program, *Result, error) {
	res, err := Approx(ctx, gs, nReal, opts)
	if err != nil {
		return nil, nil, err
	}
	prog, _, err := pamad.PlaceEvenly(gs, res.Frequencies, nReal)
	if err != nil {
		return nil, nil, err
	}
	return prog, res, nil
}
