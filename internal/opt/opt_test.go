package opt

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"tcsa/internal/conformance"
	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
	"tcsa/internal/pamad"
)

func fig2() *core.GroupSet {
	return core.MustGroupSet([]core.Group{{Time: 2, Count: 3}, {Time: 4, Count: 5}, {Time: 8, Count: 3}})
}

func TestSearchFigure2(t *testing.T) {
	res, err := Search(context.Background(), fig2(), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// PAMAD finds S=(4,2,1) with D'=1/24 on this instance; OPT must not be
	// worse, and on this instance (4,2,1) is in fact optimal in the family.
	if res.Delay > 1.0/24.0+1e-12 {
		t.Errorf("OPT delay %f worse than PAMAD's 1/24 (S=%v)", res.Delay, res.Frequencies)
	}
	if res.Evaluated == 0 {
		t.Error("Evaluated = 0")
	}
}

func TestSearchErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := Search(ctx, nil, 3, Options{}); err == nil {
		t.Error("nil group set accepted")
	}
	if _, err := Search(ctx, fig2(), 0, Options{}); err == nil {
		t.Error("0 channels accepted")
	}
	if _, err := BruteForce(ctx, nil, 3, nil); err == nil {
		t.Error("BruteForce nil group set accepted")
	}
	if _, err := BruteForce(ctx, fig2(), 0, nil); err == nil {
		t.Error("BruteForce 0 channels accepted")
	}
}

func TestSearchSingleGroup(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 4, Count: 10}})
	res, err := Search(context.Background(), gs, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frequencies) != 1 || res.Frequencies[0] != 1 {
		t.Errorf("Frequencies = %v, want [1]", res.Frequencies)
	}
}

// TestSearchNeverWorseThanPAMAD: OPT scans a superset of PAMAD's greedy
// trajectory, so its delay can never exceed PAMAD's (the paper's Figure 5
// shows PAMAD ~ OPT; this is the one-sided part of that claim).
func TestSearchNeverWorseThanPAMAD(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ctx := context.Background()
	for trial := 0; trial < 60; trial++ {
		gs := randomGroupSet(rng, 4)
		min := gs.MinChannels()
		if min < 2 {
			continue
		}
		nReal := 1 + rng.Intn(min-1)
		sres, err := Search(ctx, gs, nReal, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ps, _, err := pamad.Frequencies(gs, nReal)
		if err != nil {
			t.Fatal(err)
		}
		pd := delaymodel.GroupDelay(gs, ps, nReal)
		if sres.Delay > pd+1e-12 {
			t.Errorf("instance %v N=%d: OPT %f > PAMAD %f", gs, nReal, sres.Delay, pd)
		}
	}
}

// TestPAMADNearOptimal quantifies the paper's headline claim on random
// instances: PAMAD's analytic delay is within a small factor of OPT's.
func TestPAMADNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ctx := context.Background()
	var worstRatio float64 = 1
	for trial := 0; trial < 60; trial++ {
		gs := randomGroupSet(rng, 4)
		min := gs.MinChannels()
		if min < 2 {
			continue
		}
		nReal := 1 + rng.Intn(min-1)
		sres, err := Search(ctx, gs, nReal, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ps, _, err := pamad.Frequencies(gs, nReal)
		if err != nil {
			t.Fatal(err)
		}
		pd := delaymodel.GroupDelay(gs, ps, nReal)
		if sres.Delay == 0 {
			if pd > 0.5 {
				t.Errorf("instance %v N=%d: OPT 0 but PAMAD %f", gs, nReal, pd)
			}
			continue
		}
		if ratio := pd / sres.Delay; ratio > worstRatio && pd-sres.Delay > 0.5 {
			worstRatio = ratio
		}
	}
	// Small adversarial instances can tie-break badly; the paper's
	// "almost overlaps" claim is asserted tightly on its own workloads in
	// internal/experiments. Here we bound the damage on arbitrary inputs.
	if worstRatio > 4.0 {
		t.Errorf("worst PAMAD/OPT ratio = %.3f, want <= 4 on random instances", worstRatio)
	}
	t.Logf("worst PAMAD/OPT analytic-delay ratio over random instances: %.4f", worstRatio)
}

// TestBruteForceBoundsChainFamily: on small instances, the best
// non-increasing vector is at most marginally better than the best
// divisor-chain vector, justifying the family restriction.
func TestBruteForceBoundsChainFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ctx := context.Background()
	for trial := 0; trial < 25; trial++ {
		gs := randomGroupSet(rng, 3)
		min := gs.MinChannels()
		if min < 2 {
			continue
		}
		nReal := 1 + rng.Intn(min-1)
		chain, err := Search(ctx, gs, nReal, Options{})
		if err != nil {
			t.Fatal(err)
		}
		brute, err := BruteForce(ctx, gs, nReal, nil)
		if err != nil {
			t.Fatal(err)
		}
		if chain.Delay < brute.Delay-1e-12 {
			t.Errorf("instance %v N=%d: chain %f beat brute force %f — brute force search space too small",
				gs, nReal, chain.Delay, brute.Delay)
		}
		if brute.Delay > 0 && chain.Delay/brute.Delay > 1.5 {
			t.Errorf("instance %v N=%d: chain family %f much worse than unrestricted %f",
				gs, nReal, chain.Delay, brute.Delay)
		}
	}
}

func TestBruteForceRespectsMaxS(t *testing.T) {
	gs := fig2()
	res, err := BruteForce(context.Background(), gs, 3, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Frequencies {
		if s != 1 {
			t.Errorf("S_%d = %d, want 1 under maxS=1", i+1, s)
		}
	}
}

func TestSearchContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A cancelled context must either return promptly with an error or with
	// a valid partial result; it must not hang.
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = Search(ctx, fig2(), 3, Options{Parallelism: 1})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Search did not return after context cancellation")
	}
}

func TestBruteForceContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BruteForce(ctx, fig2(), 3, nil); err == nil {
		t.Error("BruteForce ignored cancelled context")
	}
}

func TestBuildProducesProgram(t *testing.T) {
	gs := fig2()
	prog, res, err := Build(context.Background(), gs, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Build discards the placement stats, so re-place the winning
	// frequencies (the placement is deterministic) to run the full
	// conformance spill-accounting oracle against the same program.
	prog2, stats, err := pamad.PlaceEvenly(gs, res.Frequencies, 3)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Filled() != prog2.Filled() {
		t.Errorf("Build filled %d != PlaceEvenly filled %d", prog.Filled(), prog2.Filled())
	}
	if err := conformance.SpillAccounting(prog, res.Frequencies,
		conformance.PlacementCounts(stats)); err != nil {
		t.Error(err)
	}
	if _, _, err := Build(context.Background(), nil, 3, Options{}); err == nil {
		t.Error("Build nil group set accepted")
	}
}

func TestOptionsParallelism(t *testing.T) {
	gs := fig2()
	for _, par := range []int{1, 2, 16} {
		res, err := Search(context.Background(), gs, 2, Options{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		base, err := Search(context.Background(), gs, 2, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Delay != base.Delay {
			t.Errorf("parallelism %d changed result: %f vs %f", par, res.Delay, base.Delay)
		}
		for i := range base.Frequencies {
			if res.Frequencies[i] != base.Frequencies[i] {
				t.Errorf("parallelism %d changed frequencies: %v vs %v", par, res.Frequencies, base.Frequencies)
				break
			}
		}
	}
}

func randomGroupSet(rng *rand.Rand, maxH int) *core.GroupSet {
	h := 2 + rng.Intn(maxH-1)
	groups := make([]core.Group, h)
	tt := 2 + rng.Intn(3)
	for i := 0; i < h; i++ {
		groups[i] = core.Group{Time: tt, Count: 1 + rng.Intn(25)}
		tt *= 2
	}
	return core.MustGroupSet(groups)
}
