// Package opt implements the OPT comparator of "Time-Constrained Service
// on Air" (ICDCS 2005), Section 5: an exhaustive search for the broadcast
// frequency assignment with the minimum analytic average group delay.
//
// PAMAD explores the divisor-chain frequency family S_i = prod_{j>=i} r_j
// greedily, fixing each r one stage at a time. Search explores the same
// family exhaustively — the full Cartesian product of repetition factors —
// so the measured PAMAD-vs-OPT gap is exactly the cost of PAMAD's
// greediness. For small instances BruteForce additionally enumerates every
// non-increasing frequency vector (a strict superset of the divisor-chain
// family), bounding how much the family restriction itself costs; the
// package tests use it to validate near-optimality claims.
//
// The paper notes OPT's "searching time is unacceptably high". This
// implementation keeps the search exact while cutting most of the work:
//
//   - Factors are assigned suffix-first (r_{h-1} down to r_1), so at every
//     node the suffix frequencies S_idx..S_h are final. An admissible
//     branch-and-bound lower bound — the fixed suffix's D' contribution at
//     the minimum total F any completion can reach, which
//     delaymodel.SuffixDelayTotal proves never overestimates — prunes
//     subtrees that cannot beat the shared incumbent.
//   - Leaves are screened in O(1) amortized time with factored gated
//     prefix sums maintained across the innermost r_1 sweep; only leaves
//     whose screening value lands within a strict margin of the incumbent
//     are re-scored with the exact evaluator, so every comparison that
//     decides the result uses exact arithmetic.
//   - Work is distributed by work-stealing over the two outermost factor
//     levels (an atomic claim counter), so workers whose subtrees prune
//     away immediately steal fresh prefixes instead of idling, and a
//     shared atomic incumbent tightens pruning across workers.
//
// Pruning only ever discards candidates that lose to the incumbent under
// the full deterministic tie-break chain, so the result is bit-identical
// to the exhaustive scan at any parallelism; Options.Exhaustive restores
// the literal full scan and the package differential tests pin the two
// against each other. docs/perf.md derives the bound's admissibility and
// reports the measured evaluated-node reduction.
//
//lint:deterministic bit-identical replay contract: no wall clock, no global RNG, no map-order folds
package opt

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
	"tcsa/internal/pamad"
)

// Options tunes the search.
type Options struct {
	// MaxFactor caps each repetition factor r_i. 0 means automatic: twice
	// the group-time ratio t_{i+1}/t_i (the zero-delay factor), at least 4.
	// Raising it widens the searched family at exponential cost.
	MaxFactor int
	// Parallelism bounds concurrent workers; 0 means GOMAXPROCS.
	Parallelism int
	// Exhaustive disables branch-and-bound pruning, leaf screening and
	// incumbent seeding, restoring the literal full Cartesian scan: every
	// family member is scored exactly, so Evaluated equals the product of
	// the factor caps. The differential tests and the pruning ablation in
	// internal/experiments use it as the reference search; results are
	// identical either way, only Evaluated differs.
	Exhaustive bool
}

// Result is the best frequency assignment found.
type Result struct {
	Frequencies delaymodel.Frequencies
	Delay       float64 // analytic D' of Frequencies
	Evaluated   int64   // number of candidate vectors scored exactly
}

// Pruning margins: a subtree (or screened leaf) is discarded only when its
// lower bound exceeds the incumbent by more than this strict margin, so
// float association differences between the factored screening sums and the
// exact evaluator can never discard a candidate that would win or tie.
const (
	pruneRelEps = 1e-9
	pruneAbsEps = 1e-9
)

// incumbent is the shared best-so-far under the first two tie-break keys.
// Frequencies are deliberately omitted: workers keep exact local bests and
// the deterministic merge picks the final winner, so the shared word only
// needs the keys that pruning compares against.
type incumbent struct {
	delay float64
	f     int // TotalSlots of the vector that achieved delay
}

// engine is the state shared by all search workers.
type engine struct {
	gs         *core.GroupSet
	nReal      int
	h          int
	caps       []int
	exhaustive bool

	counts      []int // P_i
	times       []int // t_i
	pagesBefore []int // pagesBefore[i] = sum_{j<i} P_j

	claims int64 // total work-stealing claims
	claimB int64 // second-level width for pair decoding (h >= 4)

	next      atomic.Int64
	inc       atomic.Pointer[incumbent]
	truncated atomic.Bool
}

func newEngine(gs *core.GroupSet, nReal int, caps []int, exhaustive bool) *engine {
	h := gs.Len()
	e := &engine{
		gs:          gs,
		nReal:       nReal,
		h:           h,
		caps:        caps,
		exhaustive:  exhaustive,
		counts:      make([]int, h),
		times:       make([]int, h),
		pagesBefore: make([]int, h),
	}
	sum := 0
	for i := 0; i < h; i++ {
		g := gs.Group(i)
		e.counts[i] = g.Count
		e.times[i] = g.Time
		e.pagesBefore[i] = sum
		sum += g.Count
	}
	switch {
	case h == 2:
		e.claims = int64(caps[0])
	case h == 3:
		e.claims = int64(caps[1])
	default:
		e.claimB = int64(caps[h-3])
		e.claims = int64(caps[h-2]) * e.claimB
	}
	return e
}

// offer publishes an exactly-evaluated candidate's (delay, F) keys to the
// shared incumbent if they improve it.
func (e *engine) offer(delay float64, f int) {
	for {
		cur := e.inc.Load()
		if cur != nil && (cur.delay < delay || (cur.delay == delay && cur.f <= f)) {
			return
		}
		if e.inc.CompareAndSwap(cur, &incumbent{delay: delay, f: f}) {
			return
		}
	}
}

// worker is one search goroutine's private state; everything it touches per
// node is preallocated, so the steady-state search allocates only on new
// local bests.
type worker struct {
	e         *engine
	s         delaymodel.Frequencies // s[h-1] = 1; filled suffix-first
	best      Result                 // Delay < 0 means empty
	evaluated int64
	gateThr   []int // leaf-loop gate thresholds, sorted ascending
	gateIdx   []int // group index per threshold
}

func newWorker(e *engine) *worker {
	w := &worker{
		e:       e,
		s:       make(delaymodel.Frequencies, e.h),
		best:    Result{Delay: -1},
		gateThr: make([]int, 0, e.h),
		gateIdx: make([]int, 0, e.h),
	}
	w.s[e.h-1] = 1
	return w
}

func (w *worker) run(ctx context.Context) {
	e := w.e
	for {
		if ctx.Err() != nil {
			e.truncated.Store(true)
			return
		}
		id := e.next.Add(1) - 1
		if id >= e.claims {
			return
		}
		w.claim(id)
	}
}

// claim expands one stolen prefix: a single leaf for h == 2, a one-level
// prefix for h == 3, and a two-level prefix (r_{h-1}, r_{h-2}) otherwise.
func (w *worker) claim(id int64) {
	e, h, s := w.e, w.e.h, w.s
	switch {
	case h == 2:
		s[0] = int(id) + 1
		w.exact(s[0]*e.counts[0] + e.counts[1])
	case h == 3:
		s[1] = int(id) + 1
		f := e.counts[2] + s[1]*e.counts[1]
		if !e.exhaustive {
			if skip, _ := w.pruneAt(1, f); skip {
				return
			}
		}
		w.leafLoop(f)
	default:
		a := int(id/e.claimB) + 1
		b := int(id%e.claimB) + 1
		s[h-2] = a
		f1 := e.counts[h-1] + a*e.counts[h-2]
		if !e.exhaustive {
			if skip, _ := w.pruneAt(h-2, f1); skip {
				return
			}
		}
		s[h-3] = b * a
		f2 := f1 + s[h-3]*e.counts[h-3]
		if !e.exhaustive {
			if skip, _ := w.pruneAt(h-3, f2); skip {
				return
			}
		}
		w.descend(h-3, f2)
	}
}

// descend enumerates r[idx-1] with the suffix s[idx..h-1] (transmission
// total fSuffix) already fixed.
func (w *worker) descend(idx, fSuffix int) {
	if idx == 1 {
		w.leafLoop(fSuffix)
		return
	}
	e := w.e
	for v := 1; v <= e.caps[idx-1]; v++ {
		w.s[idx-1] = v * w.s[idx]
		f := fSuffix + w.s[idx-1]*e.counts[idx-1]
		if !e.exhaustive {
			skip, stop := w.pruneAt(idx-1, f)
			if stop {
				return
			}
			if skip {
				continue
			}
		}
		w.descend(idx-1, f)
	}
}

// pruneAt decides whether the subtree rooted at the fixed suffix
// s[idx..h-1] (transmission total fSuffix) can be discarded.
//
// Every completion multiplies the suffix by factors >= 1, so each of the
// idx unassigned groups gets frequency >= s[idx] and the total F of any
// leaf is at least fmin = fSuffix + s[idx]*pagesBefore[idx]. The bound
// charges the unassigned prefix nothing (its groups may reach zero delay)
// and the fixed suffix its D' contribution at fmin — admissible because the
// suffix contribution is non-decreasing in F (delaymodel.SuffixDelayTotal).
// stop reports that every later sibling value at this level prunes too:
// fmin grows strictly with v, so once a zero-delay incumbent wins the
// F tie-break exactly, larger v cannot recover.
func (w *worker) pruneAt(idx, fSuffix int) (skip, stop bool) {
	e := w.e
	inc := e.inc.Load()
	if inc == nil {
		return false, false
	}
	fmin := fSuffix + w.s[idx]*e.pagesBefore[idx]
	if inc.delay == 0 && fmin > inc.f {
		// Exact integer prune: delay cannot drop below zero, so every leaf
		// here at best ties the incumbent's delay and then loses the
		// fewer-transmissions tie-break outright.
		return true, true
	}
	lb := delaymodel.SuffixDelayTotal(e.gs, w.s, idx, e.nReal, fmin)
	if lb > inc.delay*(1+pruneRelEps)+pruneAbsEps {
		return true, false
	}
	return false, false
}

// leafLoop sweeps the innermost factor r_1 with the suffix s[1..h-1]
// (transmission total base) fixed. Each leaf is screened in O(1) amortized
// time: the suffix groups' D' contributions are factored into three running
// sums (A = sum P_j/S_j, B = sum P_j t_j, C = sum S_j P_j t_j^2) over the
// groups whose delay gate gap_j > t_j is open — F grows monotonically with
// r_1 while the suffix frequencies stay fixed, so gates only open as the
// sweep advances and each group is folded in exactly once. Group 1's own
// gate moves the other way (its frequency grows with F) and is evaluated
// directly. Only leaves whose screening value lands within the strict
// pruning margin of the incumbent are re-scored exactly.
func (w *worker) leafLoop(base int) {
	e, h, s := w.e, w.e.h, w.s
	step := s[1] * e.counts[0]

	// Gate j opens exactly when F > nReal*S_j*t_j (an integer threshold).
	thr, idx := w.gateThr[:0], w.gateIdx[:0]
	for j := 1; j < h; j++ {
		t := e.nReal * s[j] * e.times[j]
		k := len(thr)
		thr, idx = append(thr, 0), append(idx, 0)
		for k > 0 && thr[k-1] > t {
			thr[k], idx[k] = thr[k-1], idx[k-1]
			k--
		}
		thr[k], idx[k] = t, j
	}
	w.gateThr, w.gateIdx = thr, idx

	var sumA, sumB, sumC float64
	ptr := 0
	n := float64(e.nReal)
	t0 := float64(e.times[0])
	p0 := float64(e.counts[0])
	for v := 1; v <= e.caps[0]; v++ {
		f := base + v*step
		if !e.exhaustive {
			if inc := e.inc.Load(); inc != nil && inc.delay == 0 && f > inc.f {
				// F grows strictly with v: every remaining leaf loses the
				// zero-delay incumbent's F tie-break.
				return
			}
		}
		for ptr < len(thr) && thr[ptr] < f {
			j := idx[ptr]
			sj, pj, tj := float64(s[j]), float64(e.counts[j]), float64(e.times[j])
			sumA += pj / sj
			sumB += pj * tj
			sumC += sj * pj * tj * tj
			ptr++
		}
		s[0] = v * s[1]
		if e.exhaustive {
			w.exact(f)
			continue
		}
		ff := float64(f)
		tM := float64(core.CeilDiv(f, e.nReal))
		fast := ((ff*tM/n)*sumA - (ff/n+tM)*sumB + sumC) / (2 * ff)
		s0 := float64(s[0])
		if gap0 := ff / (n * s0); gap0 > t0 {
			fast += (s0 * p0 / ff) * (gap0 - t0) * (tM/s0 - t0) / 2
		}
		inc := e.inc.Load()
		if inc == nil || fast <= inc.delay*(1+pruneRelEps)+pruneAbsEps {
			w.exact(f)
		}
	}
}

// exact scores the current vector with the exact evaluator, folds it into
// the worker-local best under the deterministic tie-break, and publishes
// the keys to the shared incumbent. Every value that can decide the final
// result flows through here, which is what keeps the pruned search
// bit-identical to the exhaustive one.
func (w *worker) exact(f int) {
	e := w.e
	d := delaymodel.GroupDelay(e.gs, w.s, e.nReal)
	w.evaluated++
	cand := Result{Frequencies: w.s, Delay: d}
	if w.best.Delay < 0 || betterResult(e.gs, &cand, &w.best) {
		w.best.Frequencies = append(w.best.Frequencies[:0], w.s...)
		w.best.Delay = d
	}
	if !e.exhaustive {
		e.offer(d, f)
	}
}

// Search scans the divisor-chain frequency family for the vector minimising
// the analytic average group delay D' at nReal channels. Ties are broken
// toward fewer total transmissions (shorter major cycle), then
// lexicographically, so the result is deterministic regardless of worker
// interleaving — and, because pruning only discards candidates that lose
// under that same order, independent of Options.Exhaustive. A cancelled
// context returns the context error: a truncated search is never passed off
// as a complete one. Result.Evaluated counts exact evaluations and is only
// deterministic at Parallelism 1 (incumbent timing varies across workers).
func Search(ctx context.Context, gs *core.GroupSet, nReal int, opts Options) (*Result, error) {
	if gs == nil {
		return nil, fmt.Errorf("%w: nil group set", core.ErrInvalidGroupSet)
	}
	if nReal < 1 {
		return nil, fmt.Errorf("%w: %d channels", core.ErrInsufficientChannels, nReal)
	}
	h := gs.Len()
	if h == 1 {
		return &Result{Frequencies: delaymodel.Frequencies{1}, Delay: delaymodel.GroupDelay(gs, delaymodel.Frequencies{1}, nReal), Evaluated: 1}, nil
	}

	caps := factorCaps(gs, opts.MaxFactor)
	e := newEngine(gs, nReal, caps, opts.Exhaustive)

	// Seed the incumbent with cheap family members so pruning bites from
	// the first node: PAMAD's greedy chain and the sufficient-channel
	// chain, both clamped onto the searched family. Seeds are scored with
	// the same exact evaluator and merged like any worker result, so they
	// can only tighten pruning, never change the winner.
	var seeds []Result
	if !opts.Exhaustive {
		for _, sv := range seedVectors(gs, nReal, caps) {
			d := delaymodel.GroupDelay(gs, sv, nReal)
			seeds = append(seeds, Result{Frequencies: sv, Delay: d})
			e.offer(d, sv.TotalSlots(gs))
		}
	}

	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if int64(workers) > e.claims {
		workers = int(e.claims)
	}
	ws := make([]*worker, workers)
	var wg sync.WaitGroup
	for i := range ws {
		ws[i] = newWorker(e)
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(ctx)
		}(ws[i])
	}
	wg.Wait()

	if e.truncated.Load() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, context.Canceled
	}

	best := &Result{Delay: -1}
	consider := func(cand *Result) {
		if cand.Delay < 0 {
			return
		}
		if best.Delay < 0 || betterResult(gs, cand, best) {
			best.Frequencies = cand.Frequencies
			best.Delay = cand.Delay
		}
	}
	for i := range seeds {
		consider(&seeds[i])
		best.Evaluated++
	}
	for _, w := range ws {
		consider(&w.best)
		best.Evaluated += w.evaluated
	}
	if best.Delay < 0 {
		return nil, fmt.Errorf("opt: no candidate evaluated (caps=%v)", caps)
	}
	return best, nil
}

// seedVectors returns cheap candidate vectors inside the searched family,
// deduplicated: on small instances PAMAD's greedy chain and the clamped
// sufficient-frequency chain often coincide, and scoring the same vector
// twice would only inflate Evaluated.
func seedVectors(gs *core.GroupSet, nReal int, caps []int) []delaymodel.Frequencies {
	var seeds []delaymodel.Frequencies
	if ps, _, err := pamad.Frequencies(gs, nReal); err == nil {
		seeds = append(seeds, clampToFamily(ps, caps))
	}
	suf := clampToFamily(delaymodel.SufficientFrequencies(gs), caps)
	for _, s := range seeds {
		if equalFrequencies(s, suf) {
			return seeds
		}
	}
	return append(seeds, suf)
}

// equalFrequencies reports element-wise equality of two same-family vectors.
func equalFrequencies(a, b delaymodel.Frequencies) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// clampToFamily projects a divisor-chain vector onto the searched family:
// each repetition factor r_i = S_i/S_{i+1} is clamped to [1, caps[i]] and
// the chain rebuilt, so the seed is always a member the exhaustive scan
// itself visits (pruning against an out-of-family incumbent could
// otherwise discard the entire family).
func clampToFamily(s delaymodel.Frequencies, caps []int) delaymodel.Frequencies {
	h := len(s)
	out := make(delaymodel.Frequencies, h)
	out[h-1] = 1
	for i := h - 2; i >= 0; i-- {
		r := 1
		if s[i+1] > 0 {
			r = s[i] / s[i+1]
		}
		if r < 1 {
			r = 1
		}
		if r > caps[i] {
			r = caps[i]
		}
		out[i] = r * out[i+1]
	}
	return out
}

// factorCaps derives the per-position candidate cap for r_i.
func factorCaps(gs *core.GroupSet, maxFactor int) []int {
	h := gs.Len()
	caps := make([]int, h-1)
	for i := range caps {
		ratio := gs.Group(i+1).Time / gs.Group(i).Time
		c := 2 * ratio
		if c < 4 {
			c = 4
		}
		if maxFactor > 0 && c > maxFactor {
			c = maxFactor
		}
		if c < 1 {
			c = 1
		}
		caps[i] = c
	}
	return caps
}

// betterResult reports whether a beats b: strictly lower delay; on ties,
// fewer total transmissions; then lexicographically smaller frequencies.
func betterResult(gs *core.GroupSet, a, b *Result) bool {
	if a.Delay != b.Delay {
		return a.Delay < b.Delay
	}
	fa, fb := a.Frequencies.TotalSlots(gs), b.Frequencies.TotalSlots(gs)
	if fa != fb {
		return fa < fb
	}
	for i := range a.Frequencies {
		if a.Frequencies[i] != b.Frequencies[i] {
			return a.Frequencies[i] < b.Frequencies[i]
		}
	}
	return false
}
