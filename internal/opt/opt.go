// Package opt implements the OPT comparator of "Time-Constrained Service
// on Air" (ICDCS 2005), Section 5: an exhaustive search for the broadcast
// frequency assignment with the minimum analytic average group delay.
//
// PAMAD explores the divisor-chain frequency family S_i = prod_{j>=i} r_j
// greedily, fixing each r one stage at a time. Search explores the same
// family exhaustively — the full Cartesian product of repetition factors —
// so the measured PAMAD-vs-OPT gap is exactly the cost of PAMAD's
// greediness. For small instances BruteForce additionally enumerates every
// non-increasing frequency vector (a strict superset of the divisor-chain
// family), bounding how much the family restriction itself costs; the
// package tests use it to validate near-optimality claims.
//
// The paper notes OPT's "searching time is unacceptably high"; this
// implementation parallelises the scan across the first repetition factor
// with a bounded worker pool and supports context cancellation, which keeps
// the default benchmarks tractable without changing the result.
package opt

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
)

// Options tunes the search.
type Options struct {
	// MaxFactor caps each repetition factor r_i. 0 means automatic: twice
	// the group-time ratio t_{i+1}/t_i (the zero-delay factor), at least 4.
	// Raising it widens the searched family at exponential cost.
	MaxFactor int
	// Parallelism bounds concurrent workers; 0 means GOMAXPROCS.
	Parallelism int
}

// Result is the best frequency assignment found.
type Result struct {
	Frequencies delaymodel.Frequencies
	Delay       float64 // analytic D' of Frequencies
	Evaluated   int64   // number of candidate vectors scored
}

// Search exhaustively scans the divisor-chain frequency family for the
// vector minimising the analytic average group delay D' at nReal channels.
// Ties are broken toward fewer total transmissions (shorter major cycle),
// then lexicographically, so the result is deterministic regardless of
// worker interleaving.
func Search(ctx context.Context, gs *core.GroupSet, nReal int, opts Options) (*Result, error) {
	if gs == nil {
		return nil, fmt.Errorf("%w: nil group set", core.ErrInvalidGroupSet)
	}
	if nReal < 1 {
		return nil, fmt.Errorf("%w: %d channels", core.ErrInsufficientChannels, nReal)
	}
	h := gs.Len()
	if h == 1 {
		return &Result{Frequencies: delaymodel.Frequencies{1}, Delay: delaymodel.GroupDelay(gs, delaymodel.Frequencies{1}, nReal), Evaluated: 1}, nil
	}

	caps := factorCaps(gs, opts.MaxFactor)
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > caps[0] {
		workers = caps[0]
	}

	// Fan out over r_1; each worker scans the remaining factors serially.
	firsts := make(chan int)
	results := make(chan *Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := &Result{Delay: -1}
			r := make([]int, h-1)
			scratch := make(delaymodel.Frequencies, h)
			for first := range firsts {
				r[0] = first
				scan(gs, nReal, caps, r, 1, local, scratch)
			}
			results <- local
		}()
	}

	var sendErr error
feed:
	for first := 1; first <= caps[0]; first++ {
		select {
		case firsts <- first:
		case <-ctx.Done():
			sendErr = ctx.Err()
			break feed
		}
	}
	close(firsts)
	wg.Wait()
	close(results)

	best := &Result{Delay: -1}
	for local := range results {
		best.Evaluated += local.Evaluated
		if local.Delay < 0 {
			continue
		}
		if best.Delay < 0 || betterResult(gs, local, best) {
			best.Frequencies = local.Frequencies
			best.Delay = local.Delay
		}
	}
	if sendErr != nil && best.Delay < 0 {
		return nil, sendErr
	}
	if best.Delay < 0 {
		return nil, fmt.Errorf("opt: no candidate evaluated (caps=%v)", caps)
	}
	return best, nil
}

// scan recursively enumerates r[depth:] and scores complete vectors into
// local (which uses Delay < 0 as "empty"). scratch is one reusable
// frequency vector per worker: every candidate is materialised into it and
// only a new best is copied out, so the enumeration hot loop allocates
// nothing.
func scan(gs *core.GroupSet, nReal int, caps, r []int, depth int, local *Result, scratch delaymodel.Frequencies) {
	if depth == len(r) {
		chainFrequenciesInto(scratch, r)
		d := delaymodel.GroupDelay(gs, scratch, nReal)
		local.Evaluated++
		cand := Result{Frequencies: scratch, Delay: d}
		if local.Delay < 0 || betterResult(gs, &cand, local) {
			local.Frequencies = append(local.Frequencies[:0], scratch...)
			local.Delay = d
		}
		return
	}
	for v := 1; v <= caps[depth]; v++ {
		r[depth] = v
		scan(gs, nReal, caps, r, depth+1, local, scratch)
	}
}

// chainFrequenciesInto fills s with the frequencies of repetition factors
// r_1..r_{h-1}: S_i = prod_{j=i}^{h-1} r_j, S_h = 1.
func chainFrequenciesInto(s delaymodel.Frequencies, r []int) {
	s[len(r)] = 1
	for i := len(r) - 1; i >= 0; i-- {
		s[i] = s[i+1] * r[i]
	}
}

// factorCaps derives the per-position candidate cap for r_i.
func factorCaps(gs *core.GroupSet, maxFactor int) []int {
	h := gs.Len()
	caps := make([]int, h-1)
	for i := range caps {
		ratio := gs.Group(i+1).Time / gs.Group(i).Time
		c := 2 * ratio
		if c < 4 {
			c = 4
		}
		if maxFactor > 0 && c > maxFactor {
			c = maxFactor
		}
		if c < 1 {
			c = 1
		}
		caps[i] = c
	}
	return caps
}

// betterResult reports whether a beats b: strictly lower delay; on ties,
// fewer total transmissions; then lexicographically smaller frequencies.
func betterResult(gs *core.GroupSet, a, b *Result) bool {
	if a.Delay != b.Delay {
		return a.Delay < b.Delay
	}
	fa, fb := a.Frequencies.TotalSlots(gs), b.Frequencies.TotalSlots(gs)
	if fa != fb {
		return fa < fb
	}
	for i := range a.Frequencies {
		if a.Frequencies[i] != b.Frequencies[i] {
			return a.Frequencies[i] < b.Frequencies[i]
		}
	}
	return false
}
