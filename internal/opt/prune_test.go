package opt

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"tcsa/internal/core"
)

// TestSearchMatchesExhaustive pins the pruned search bit-for-bit against the
// literal full Cartesian scan on randomized instances: identical
// frequencies, identical delay, identical tie-break outcomes.
func TestSearchMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ctx := context.Background()
	for trial := 0; trial < 80; trial++ {
		gs := randomGroupSet(rng, 4)
		nReal := 1 + rng.Intn(gs.MinChannels())
		for _, par := range []int{1, 4} {
			pruned, err := Search(ctx, gs, nReal, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("pruned Search(%v, %d): %v", gs, nReal, err)
			}
			full, err := Search(ctx, gs, nReal, Options{Parallelism: par, Exhaustive: true})
			if err != nil {
				t.Fatalf("exhaustive Search(%v, %d): %v", gs, nReal, err)
			}
			if pruned.Delay != full.Delay {
				t.Fatalf("instance %v N=%d par=%d: pruned delay %v != exhaustive %v",
					gs, nReal, par, pruned.Delay, full.Delay)
			}
			for i := range full.Frequencies {
				if pruned.Frequencies[i] != full.Frequencies[i] {
					t.Fatalf("instance %v N=%d par=%d: pruned %v != exhaustive %v (tie-break drift)",
						gs, nReal, par, pruned.Frequencies, full.Frequencies)
				}
			}
			// The pruned search scores at most the exhaustive leaf count
			// plus its two incumbent seeds (visible on tiny instances).
			if pruned.Evaluated > full.Evaluated+2 {
				t.Fatalf("instance %v N=%d: pruned evaluated %d > exhaustive %d + seeds",
					gs, nReal, pruned.Evaluated, full.Evaluated)
			}
		}
	}
}

// TestSearchEvaluatedReduction asserts the acceptance criterion on the
// paper's Figure 5 configuration (h=8, t=4..512, scarce channels): the
// branch-and-bound search scores at least 10x fewer candidates than the
// exhaustive scan while returning the identical result. Parallelism 1 makes
// Evaluated deterministic.
func TestSearchEvaluatedReduction(t *testing.T) {
	gs := paperUniform(125)
	ctx := context.Background()
	for _, nReal := range []int{10, 20, 40} {
		pruned, err := Search(ctx, gs, nReal, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		full, err := Search(ctx, gs, nReal, Options{Parallelism: 1, Exhaustive: true})
		if err != nil {
			t.Fatal(err)
		}
		if pruned.Delay != full.Delay {
			t.Fatalf("N=%d: pruned delay %v != exhaustive %v", nReal, pruned.Delay, full.Delay)
		}
		for i := range full.Frequencies {
			if pruned.Frequencies[i] != full.Frequencies[i] {
				t.Fatalf("N=%d: pruned %v != exhaustive %v", nReal, pruned.Frequencies, full.Frequencies)
			}
		}
		if full.Evaluated < 10*pruned.Evaluated {
			t.Errorf("N=%d: exhaustive %d < 10x pruned %d (%.1fx reduction)",
				nReal, full.Evaluated, pruned.Evaluated, float64(full.Evaluated)/float64(pruned.Evaluated))
		}
		t.Logf("N=%d: exhaustive %d, pruned %d (%.0fx)", nReal, full.Evaluated, pruned.Evaluated,
			float64(full.Evaluated)/float64(pruned.Evaluated))
	}
}

// countdownCtx is a context whose Err becomes (and stays) context.Canceled
// after a fixed number of Err calls, making mid-search cancellation
// deterministic without timing games.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(calls int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(calls)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestSearchCancelledMidSearch: a context that expires partway through the
// claim loop must surface the cancellation as an error — a truncated search
// result must never be mistaken for a complete one. (This is the regression
// test for the old behaviour of silently returning the partial best.)
func TestSearchCancelledMidSearch(t *testing.T) {
	gs := paperUniform(5)
	full, err := Search(context.Background(), gs, 10, Options{Parallelism: 1, Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	cancelledAtLeastOnce := false
	for calls := int64(1); calls <= 8; calls++ {
		res, err := Search(newCountdownCtx(calls), gs, 10, Options{Parallelism: 1, Exhaustive: true})
		if err == nil {
			// The countdown outlived the whole search: must be complete and
			// bit-identical to the unrestricted run.
			if res.Evaluated != full.Evaluated || res.Delay != full.Delay {
				t.Fatalf("calls=%d: complete run diverged: %+v vs %+v", calls, res, full)
			}
			continue
		}
		cancelledAtLeastOnce = true
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("calls=%d: err = %v, want context.Canceled", calls, err)
		}
		if res != nil {
			t.Fatalf("calls=%d: truncated search returned a result alongside the error", calls)
		}
	}
	if !cancelledAtLeastOnce {
		t.Fatal("countdown context never truncated the search — test exercised nothing")
	}
}

// TestSearchPreCancelled: an already-cancelled context errors immediately.
func TestSearchPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Search(ctx, fig2(), 3, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("pre-cancelled search returned a result")
	}
}

// TestSearchWorkStealingRace hammers the shared incumbent and claim counter
// with many workers on a wide instance; run under -race this is the data
// race gate for the work-stealing paths, and the result must still match
// the serial scan bit for bit.
func TestSearchWorkStealingRace(t *testing.T) {
	gs := paperUniform(25)
	ctx := context.Background()
	serial, err := Search(ctx, gs, 15, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for _, par := range []int{2, 8, 32} {
		res, err := Search(ctx, gs, 15, Options{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if res.Delay != serial.Delay {
			t.Errorf("parallelism %d: delay %v != serial %v", par, res.Delay, serial.Delay)
		}
		for i := range serial.Frequencies {
			if res.Frequencies[i] != serial.Frequencies[i] {
				t.Errorf("parallelism %d: frequencies %v != serial %v", par, res.Frequencies, serial.Frequencies)
				break
			}
		}
	}
	t.Logf("parallel sweeps in %v", time.Since(start))
}

// paperUniform is the paper's uniform workload shape: h=8 groups, t=4..512,
// per pages each.
func paperUniform(per int) *core.GroupSet {
	groups := make([]core.Group, 8)
	tt := 4
	for i := range groups {
		groups[i] = core.Group{Time: tt, Count: per}
		tt *= 2
	}
	return core.MustGroupSet(groups)
}
