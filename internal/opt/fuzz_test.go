package opt

import (
	"context"
	"testing"

	"tcsa/internal/conformance"
	"tcsa/internal/core"
)

// FuzzPTASEquivalence differentially fuzzes the approximate optimizer
// against branch-and-bound across random valid group sets, channel budgets
// and slack settings: the PTAS result must always be a divisor-chain family
// member with analytic delay within (1+ε) of the exact optimum. The bounded
// shapes keep every family under the engine's exact-scan limit, so on this
// corpus the bound is tight — any gap at all is a real divergence between
// the two engines, not approximation slack.
func FuzzPTASEquivalence(f *testing.F) {
	f.Add(2, 2, uint8(3), uint8(5), uint8(3), uint8(1), uint8(0)) // Figure 2 at its knee
	f.Add(4, 2, uint8(125), uint8(125), uint8(125), uint8(8), uint8(1))
	f.Add(1, 3, uint8(1), uint8(0), uint8(9), uint8(1), uint8(2))
	f.Add(64, 8, uint8(255), uint8(255), uint8(255), uint8(30), uint8(0))
	f.Fuzz(func(t *testing.T, t1, c int, p1, p2, p3, chans, epsSel uint8) {
		if t1 > 64 || c > 8 || chans == 0 {
			return
		}
		var counts []int
		for _, p := range []uint8{p1, p2, p3} {
			if p > 0 {
				counts = append(counts, int(p))
			}
		}
		if len(counts) == 0 {
			return
		}
		gs, err := core.Geometric(t1, c, counts)
		if err != nil {
			return
		}
		nReal := int(chans)
		eps := []float64{0.05, 0.1, 0.25}[int(epsSel)%3]
		ctx := context.Background()
		sres, err := Search(ctx, gs, nReal, Options{})
		if err != nil {
			t.Fatalf("Search(%v, %d): %v", gs, nReal, err)
		}
		ares, err := Approx(ctx, gs, nReal, ApproxOptions{Eps: eps, Parallelism: 1})
		if err != nil {
			t.Fatalf("Approx(%v, %d, eps=%v): %v", gs, nReal, eps, err)
		}
		if gs.Len() > 1 {
			if err := conformance.DivisorChainFamily(gs, ares.Frequencies); err != nil {
				t.Fatalf("instance %v N=%d: %v", gs, nReal, err)
			}
		}
		if ares.Delay > sres.Delay*(1+eps)+1e-9 {
			t.Fatalf("instance %v N=%d eps=%v: approx delay %v > (1+ε)·opt %v (S=%v vs %v)",
				gs, nReal, eps, ares.Delay, sres.Delay, ares.Frequencies, sres.Frequencies)
		}
	})
}
