// Package estimator implements the expected-time acquisition techniques the
// paper delegates to prior work (Section 2: "the piggyback and the probing
// techniques are a few of those suitable for this purpose"): turning raw
// client-reported time tolerances into the per-page expected times the
// schedulers consume.
//
// Two collection styles share one aggregation core:
//
//   - Piggyback: every client request carries the client's tolerated wait
//     for that page; the server folds reports in continuously.
//   - Probe: the server polls a random sample of clients once and folds in
//     everything they report.
//
// Aggregation keeps a bounded per-page reservoir and estimates a low
// quantile of the reported tolerances — conservative, so the schedule is
// built against the demanding clients rather than the average ones — and
// feeds core.Rearrange to produce the geometric group structure.
package estimator

import (
	"fmt"
	"math/rand"

	"tcsa/internal/core"
	"tcsa/internal/stats"
)

// Config tunes an Aggregator.
type Config struct {
	// Quantile of reported tolerances used as the page's expected time;
	// lower is more conservative. The zero value means the minimum reported
	// tolerance — the most conservative choice, and the right default for
	// deadline scheduling: no sampled client's constraint is violated.
	Quantile float64
	// ReservoirSize bounds per-page memory; 0 defaults to 256. Reservoir
	// sampling keeps the retained sample uniform over all reports.
	ReservoirSize int
	// Seed drives reservoir replacement; fixed seed = reproducible
	// estimates.
	Seed int64
}

// Aggregator accumulates tolerance reports per page and estimates each
// page's expected time.
type Aggregator struct {
	cfg       Config
	rng       *rand.Rand
	reservoir [][]float64
	seen      []int // total reports per page (reservoir may hold fewer)
}

// NewAggregator creates an aggregator for an instance with pages pages.
func NewAggregator(pages int, cfg Config) (*Aggregator, error) {
	if pages < 1 {
		return nil, fmt.Errorf("estimator: %d pages", pages)
	}
	if cfg.Quantile < 0 || cfg.Quantile > 1 {
		return nil, fmt.Errorf("estimator: quantile %f outside [0,1]", cfg.Quantile)
	}
	if cfg.ReservoirSize == 0 {
		cfg.ReservoirSize = 256
	}
	if cfg.ReservoirSize < 1 {
		return nil, fmt.Errorf("estimator: reservoir size %d", cfg.ReservoirSize)
	}
	return &Aggregator{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		reservoir: make([][]float64, pages),
		seen:      make([]int, pages),
	}, nil
}

// Pages returns the instance size.
func (a *Aggregator) Pages() int { return len(a.reservoir) }

// Report folds in one client's tolerated wait (in slots, > 0) for page id.
func (a *Aggregator) Report(id core.PageID, tolerance float64) error {
	if id < 0 || int(id) >= len(a.reservoir) {
		return fmt.Errorf("%w: %d", core.ErrPageRange, id)
	}
	if tolerance <= 0 {
		return fmt.Errorf("estimator: non-positive tolerance %f", tolerance)
	}
	a.seen[id]++
	r := a.reservoir[id]
	if len(r) < a.cfg.ReservoirSize {
		a.reservoir[id] = append(r, tolerance)
		return nil
	}
	// Vitter's algorithm R: replace a random element with probability
	// size/seen.
	if j := a.rng.Intn(a.seen[id]); j < len(r) {
		r[j] = tolerance
	}
	return nil
}

// Reports returns how many reports page id has received.
func (a *Aggregator) Reports(id core.PageID) int {
	if id < 0 || int(id) >= len(a.seen) {
		return 0
	}
	return a.seen[id]
}

// Estimate returns the configured low quantile of page id's reported
// tolerances; ok is false when the page has no reports.
func (a *Aggregator) Estimate(id core.PageID) (est float64, ok bool) {
	if id < 0 || int(id) >= len(a.reservoir) || len(a.reservoir[id]) == 0 {
		return 0, false
	}
	return stats.Percentile(a.reservoir[id], a.cfg.Quantile), true
}

// ExpectedTimes materialises integer per-page expected times (slots, >= 1),
// flooring each estimate so the constraint is conservative. Pages without
// reports get fallback.
func (a *Aggregator) ExpectedTimes(fallback int) ([]int, error) {
	if fallback < 1 {
		return nil, fmt.Errorf("estimator: fallback %d < 1", fallback)
	}
	times := make([]int, len(a.reservoir))
	for i := range times {
		est, ok := a.Estimate(core.PageID(i))
		if !ok {
			times[i] = fallback
			continue
		}
		t := int(est)
		if t < 1 {
			t = 1
		}
		times[i] = t
	}
	return times, nil
}

// Groups runs the full acquisition pipeline: estimates -> integer expected
// times -> core.Rearrange with ratio c.
func (a *Aggregator) Groups(c, fallback int) (*core.Rearrangement, error) {
	times, err := a.ExpectedTimes(fallback)
	if err != nil {
		return nil, err
	}
	return core.Rearrange(times, c)
}

// Report is one client's tolerance statement, used by Probe.
type Report struct {
	Page      core.PageID
	Tolerance float64
}

// Probe polls a uniform random sample (without replacement) of the client
// population and aggregates everything the sampled clients report.
// population[i] lists client i's tolerances. sampleSize >= len(population)
// polls everyone.
func Probe(pages int, population [][]Report, sampleSize int, cfg Config) (*Aggregator, error) {
	if sampleSize < 1 {
		return nil, fmt.Errorf("estimator: sample size %d", sampleSize)
	}
	agg, err := NewAggregator(pages, cfg)
	if err != nil {
		return nil, err
	}
	idx := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)).Perm(len(population))
	if sampleSize > len(idx) {
		sampleSize = len(idx)
	}
	for _, ci := range idx[:sampleSize] {
		for _, rep := range population[ci] {
			if err := agg.Report(rep.Page, rep.Tolerance); err != nil {
				return nil, fmt.Errorf("estimator: client %d: %w", ci, err)
			}
		}
	}
	return agg, nil
}
