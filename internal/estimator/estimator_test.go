package estimator

import (
	"math/rand"
	"testing"

	"tcsa/internal/core"
)

func TestNewAggregatorValidation(t *testing.T) {
	if _, err := NewAggregator(0, Config{}); err == nil {
		t.Error("0 pages accepted")
	}
	if _, err := NewAggregator(1, Config{Quantile: 2}); err == nil {
		t.Error("quantile > 1 accepted")
	}
	if _, err := NewAggregator(1, Config{Quantile: -0.5}); err == nil {
		t.Error("negative quantile accepted")
	}
	if _, err := NewAggregator(1, Config{ReservoirSize: -1}); err == nil {
		t.Error("negative reservoir accepted")
	}
	a, err := NewAggregator(3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Pages() != 3 {
		t.Errorf("Pages = %d", a.Pages())
	}
}

func TestReportValidation(t *testing.T) {
	a, _ := NewAggregator(2, Config{})
	if err := a.Report(5, 1); err == nil {
		t.Error("out-of-range page accepted")
	}
	if err := a.Report(0, 0); err == nil {
		t.Error("zero tolerance accepted")
	}
	if err := a.Report(0, -3); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestEstimateQuantile(t *testing.T) {
	a, _ := NewAggregator(1, Config{Quantile: 0.5})
	for _, tol := range []float64{10, 20, 30, 40, 50} {
		if err := a.Report(0, tol); err != nil {
			t.Fatal(err)
		}
	}
	est, ok := a.Estimate(0)
	if !ok || est != 30 {
		t.Errorf("median estimate = %f,%v want 30,true", est, ok)
	}
	if a.Reports(0) != 5 {
		t.Errorf("Reports = %d, want 5", a.Reports(0))
	}
	if a.Reports(9) != 0 {
		t.Error("Reports out of range != 0")
	}
	if _, ok := a.Estimate(9); ok {
		t.Error("Estimate out of range ok")
	}
}

func TestEstimateConservative(t *testing.T) {
	// Quantile 0.1: the estimate tracks the demanding tail.
	a, _ := NewAggregator(1, Config{Quantile: 0.1, Seed: 1})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		_ = a.Report(0, 50+rng.Float64()*100) // tolerances in [50, 150)
	}
	est, ok := a.Estimate(0)
	if !ok {
		t.Fatal("no estimate")
	}
	if est < 50 || est > 75 {
		t.Errorf("10th-percentile estimate = %f, want near 60", est)
	}
}

func TestReservoirBoundsMemory(t *testing.T) {
	a, _ := NewAggregator(1, Config{ReservoirSize: 16, Seed: 3})
	for i := 0; i < 10000; i++ {
		_ = a.Report(0, float64(i+1))
	}
	if got := len(a.reservoir[0]); got != 16 {
		t.Errorf("reservoir holds %d, want 16", got)
	}
	if a.Reports(0) != 10000 {
		t.Errorf("Reports = %d", a.Reports(0))
	}
	// Reservoir sampling keeps a uniform sample: its mean should be near
	// the stream mean (5000), not stuck at the earliest values.
	var sum float64
	for _, v := range a.reservoir[0] {
		sum += v
	}
	if mean := sum / 16; mean < 2000 || mean > 8000 {
		t.Errorf("reservoir mean %f suggests biased sampling", mean)
	}
}

func TestExpectedTimesAndFallback(t *testing.T) {
	a, _ := NewAggregator(3, Config{Quantile: 0.0})
	_ = a.Report(0, 7.9)
	_ = a.Report(2, 0.4) // floors below 1 -> clamped to 1
	times, err := a.ExpectedTimes(42)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{7, 42, 1}
	for i, w := range want {
		if times[i] != w {
			t.Errorf("times[%d] = %d, want %d", i, times[i], w)
		}
	}
	if _, err := a.ExpectedTimes(0); err == nil {
		t.Error("fallback 0 accepted")
	}
}

// TestGroupsPipeline: estimates flow into a valid geometric group set whose
// times never exceed what any demanding client reported.
func TestGroupsPipeline(t *testing.T) {
	const pages = 20
	a, _ := NewAggregator(pages, Config{Quantile: 0, Seed: 4}) // min = most conservative
	rng := rand.New(rand.NewSource(5))
	minTol := make([]float64, pages)
	for i := range minTol {
		minTol[i] = 1e18
	}
	for i := 0; i < 2000; i++ {
		page := core.PageID(rng.Intn(pages))
		tol := 2 + rng.Float64()*120
		_ = a.Report(page, tol)
		if tol < minTol[page] {
			minTol[page] = tol
		}
	}
	r, err := a.Groups(2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r.Set.Pages() != pages {
		t.Fatalf("group set has %d pages, want %d", r.Set.Pages(), pages)
	}
	for i := 0; i < pages; i++ {
		if got := float64(r.NewTimes[i]); got > minTol[i] {
			t.Errorf("page %d: rearranged time %f exceeds strictest report %f", i, got, minTol[i])
		}
	}
}

func TestProbeSamplesPopulation(t *testing.T) {
	population := [][]Report{
		{{Page: 0, Tolerance: 10}},
		{{Page: 0, Tolerance: 20}},
		{{Page: 1, Tolerance: 30}},
		{{Page: 1, Tolerance: 40}, {Page: 0, Tolerance: 50}},
	}
	agg, err := Probe(2, population, 4, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Reports(0) != 3 || agg.Reports(1) != 2 {
		t.Errorf("reports = %d/%d, want 3/2 when polling everyone", agg.Reports(0), agg.Reports(1))
	}
	sampled, err := Probe(2, population, 2, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if total := sampled.Reports(0) + sampled.Reports(1); total < 1 || total > 3 {
		t.Errorf("sample of 2 clients yielded %d reports", total)
	}
	if _, err := Probe(2, population, 0, Config{}); err == nil {
		t.Error("sample size 0 accepted")
	}
}

func TestProbeDeterministic(t *testing.T) {
	population := make([][]Report, 50)
	rng := rand.New(rand.NewSource(7))
	for i := range population {
		population[i] = []Report{{Page: core.PageID(rng.Intn(4)), Tolerance: 1 + rng.Float64()*9}}
	}
	a1, _ := Probe(4, population, 10, Config{Seed: 8})
	a2, _ := Probe(4, population, 10, Config{Seed: 8})
	for p := core.PageID(0); p < 4; p++ {
		e1, ok1 := a1.Estimate(p)
		e2, ok2 := a2.Estimate(p)
		if ok1 != ok2 || e1 != e2 {
			t.Fatalf("probe not deterministic for page %d", p)
		}
	}
}
