package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tcsa/internal/core"
)

func TestGroupCountsSumAndFloor(t *testing.T) {
	for _, d := range Distributions() {
		for _, tc := range []struct{ h, n int }{
			{8, 1000}, {8, 8}, {8, 9}, {1, 5}, {5, 17}, {3, 1000},
		} {
			counts, err := GroupCounts(d, tc.h, tc.n)
			if err != nil {
				t.Fatalf("%v h=%d n=%d: %v", d, tc.h, tc.n, err)
			}
			sum := 0
			for _, c := range counts {
				if c < 1 {
					t.Errorf("%v h=%d n=%d: count %d < 1 in %v", d, tc.h, tc.n, c, counts)
				}
				sum += c
			}
			if sum != tc.n {
				t.Errorf("%v h=%d n=%d: counts %v sum to %d", d, tc.h, tc.n, counts, sum)
			}
		}
	}
}

func TestGroupCountsShapes(t *testing.T) {
	const h, n = 8, 1000
	uni, _ := GroupCounts(Uniform, h, n)
	for _, c := range uni {
		if c != n/h {
			t.Errorf("uniform counts = %v, want all %d", uni, n/h)
		}
	}
	lsk, _ := GroupCounts(LSkewed, h, n)
	for i := 1; i < h; i++ {
		if lsk[i] > lsk[i-1] {
			t.Errorf("L-skewed counts not non-increasing: %v", lsk)
		}
	}
	if lsk[0] <= lsk[h-1] {
		t.Errorf("L-skewed has no skew: %v", lsk)
	}
	ssk, _ := GroupCounts(SSkewed, h, n)
	for i := range ssk {
		if ssk[i] != lsk[h-1-i] {
			t.Errorf("S-skewed %v is not the mirror of L-skewed %v", ssk, lsk)
			break
		}
	}
	nor, _ := GroupCounts(Normal, h, n)
	peak := 0
	for i, c := range nor {
		if c > nor[peak] {
			peak = i
		}
	}
	if peak == 0 || peak == h-1 {
		t.Errorf("normal peak at edge: %v", nor)
	}
	// Bell: non-decreasing up to the peak, non-increasing after.
	for i := 1; i <= peak; i++ {
		if nor[i] < nor[i-1]-1 { // rounding can wobble by 1
			t.Errorf("normal not bell-shaped on the left: %v", nor)
		}
	}
	for i := peak + 1; i < h; i++ {
		if nor[i] > nor[i-1]+1 {
			t.Errorf("normal not bell-shaped on the right: %v", nor)
		}
	}
}

func TestGroupCountsErrors(t *testing.T) {
	if _, err := GroupCounts(Uniform, 0, 10); err == nil {
		t.Error("h=0 accepted")
	}
	if _, err := GroupCounts(Uniform, 10, 5); err == nil {
		t.Error("n<h accepted")
	}
	if _, err := GroupCounts(Distribution(99), 4, 10); err == nil {
		t.Error("unknown distribution accepted")
	}
}

func TestGroupCountsDeterministic(t *testing.T) {
	a, _ := GroupCounts(Normal, 8, 1000)
	b, _ := GroupCounts(Normal, 8, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("GroupCounts not deterministic: %v vs %v", a, b)
		}
	}
}

func TestGroupSetBuildsPaperDefault(t *testing.T) {
	gs, err := GroupSet(Uniform, 8, 1000, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gs.Pages() != 1000 || gs.Len() != 8 {
		t.Fatalf("instance = %v", gs)
	}
	wantTimes := []int{4, 8, 16, 32, 64, 128, 256, 512}
	for i, w := range wantTimes {
		if gs.Group(i).Time != w {
			t.Errorf("t_%d = %d, want %d", i+1, gs.Group(i).Time, w)
		}
	}
	if got := gs.MinChannels(); got != 63 {
		t.Errorf("MinChannels = %d, want 63 (paper reports 64 for its exact histogram)", got)
	}
}

func TestDistributionString(t *testing.T) {
	tests := map[Distribution]string{
		Uniform: "uniform", Normal: "normal", LSkewed: "L-skewed", SSkewed: "S-skewed",
		Distribution(42): "Distribution(42)",
	}
	for d, want := range tests {
		if got := d.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(d), got, want)
		}
	}
}

func TestParseDistribution(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Distribution
	}{
		{"uniform", Uniform}, {"normal", Normal},
		{"lskew", LSkewed}, {"l-skewed", LSkewed},
		{"sskew", SSkewed}, {"s-skewed", SSkewed},
	} {
		got, err := ParseDistribution(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseDistribution(%q) = %v,%v want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseDistribution("pareto"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestApportionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := 1 + rng.Intn(12)
		n := h + rng.Intn(2000)
		d := Distributions()[rng.Intn(4)]
		counts, err := GroupCounts(d, h, n)
		if err != nil {
			return false
		}
		sum := 0
		for _, c := range counts {
			if c < 1 {
				return false
			}
			sum += c
		}
		return sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestGenerateRequestsUniform(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 10}, {Time: 4, Count: 10}})
	reqs, err := GenerateRequests(gs, 100, RequestConfig{Count: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 5000 {
		t.Fatalf("got %d requests", len(reqs))
	}
	hits := make([]int, gs.Pages())
	for _, r := range reqs {
		if r.Page < 0 || int(r.Page) >= gs.Pages() {
			t.Fatalf("page %d out of range", r.Page)
		}
		if r.Arrival < 0 || r.Arrival >= 100 {
			t.Fatalf("arrival %f out of cycle", r.Arrival)
		}
		hits[r.Page]++
	}
	// Uniform: each page expects 250 hits; allow generous slack.
	for id, hcount := range hits {
		if hcount < 150 || hcount > 350 {
			t.Errorf("page %d hit %d times, want ~250", id, hcount)
		}
	}
}

func TestGenerateRequestsZipfSkews(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 50}})
	reqs, err := GenerateRequests(gs, 10, RequestConfig{Count: 20000, Choice: ZipfPages, Theta: 0.9, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var low, high int
	for _, r := range reqs {
		if r.Page < 10 {
			low++
		}
		if r.Page >= 40 {
			high++
		}
	}
	if low <= 2*high {
		t.Errorf("Zipf not skewed: first decile %d hits vs last decile %d", low, high)
	}
}

func TestGenerateRequestsDeterministicAcrossCalls(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 10}})
	a, _ := GenerateRequests(gs, 10, RequestConfig{Count: 100, Seed: 7})
	b, _ := GenerateRequests(gs, 10, RequestConfig{Count: 100, Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
	c, _ := GenerateRequests(gs, 10, RequestConfig{Count: 100, Seed: 8})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestGenerateRequestsErrors(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 2}})
	if _, err := GenerateRequests(nil, 10, RequestConfig{Count: 1}); err == nil {
		t.Error("nil group set accepted")
	}
	if _, err := GenerateRequests(gs, 0, RequestConfig{Count: 1}); err == nil {
		t.Error("cycle 0 accepted")
	}
	if _, err := GenerateRequests(gs, 10, RequestConfig{Count: -1}); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := GenerateRequests(gs, 10, RequestConfig{Count: 1, Choice: PageChoice(9)}); err == nil {
		t.Error("unknown choice accepted")
	}
	if _, err := GenerateRequests(gs, 10, RequestConfig{Count: 1, Choice: ZipfPages, Theta: 2}); err == nil {
		t.Error("theta > 1 accepted")
	}
}

func TestAccessProbabilities(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 4}})
	uni, err := AccessProbabilities(gs, RequestConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range uni {
		if p != 0.25 {
			t.Errorf("uniform probabilities = %v", uni)
		}
	}
	zipf, err := AccessProbabilities(gs, RequestConfig{Choice: ZipfPages, Theta: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 1; i < len(zipf); i++ {
		if zipf[i] >= zipf[i-1] {
			t.Errorf("zipf probabilities not decreasing: %v", zipf)
		}
	}
	for _, p := range zipf {
		sum += p
	}
	if absDiff(sum, 1) > 1e-12 {
		t.Errorf("zipf probabilities sum to %f", sum)
	}
	if _, err := AccessProbabilities(nil, RequestConfig{}); err == nil {
		t.Error("nil group set accepted")
	}
	if _, err := AccessProbabilities(gs, RequestConfig{Choice: PageChoice(9)}); err == nil {
		t.Error("unknown choice accepted")
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestGeneratePoissonRequests(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 10}})
	cfg := PoissonConfig{RequestConfig: RequestConfig{Count: 20000, Seed: 15}, Rate: 2.0}
	reqs, err := GeneratePoissonRequests(gs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i, r := range reqs {
		if r.Arrival <= prev {
			t.Fatalf("arrival %d not strictly increasing: %f after %f", i, r.Arrival, prev)
		}
		prev = r.Arrival
	}
	// Mean inter-arrival should be ~1/rate.
	if mean := prev / float64(len(reqs)); mean < 0.45 || mean > 0.55 {
		t.Errorf("mean inter-arrival %f, want ~0.5", mean)
	}
	if _, err := GeneratePoissonRequests(nil, cfg); err == nil {
		t.Error("nil group set accepted")
	}
	bad := cfg
	bad.Rate = 0
	if _, err := GeneratePoissonRequests(gs, bad); err == nil {
		t.Error("zero rate accepted")
	}
	bad = cfg
	bad.Count = -1
	if _, err := GeneratePoissonRequests(gs, bad); err == nil {
		t.Error("negative count accepted")
	}
}
