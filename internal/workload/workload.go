// Package workload generates the synthetic broadcast workloads of
// "Time-Constrained Service on Air" (ICDCS 2005), Section 5: group-size
// distributions over expected-time groups (Figure 3), the default parameter
// set (Figure 4), and client request streams.
//
// The paper specifies four qualitative group-size shapes — normal,
// S-skewed, L-skewed and uniform — over h groups totalling n pages, but not
// their exact histogram values. This package uses deterministic parametric
// shapes with exact-sum rounding: a discrete bell for normal, a geometric
// decay for L-skewed (mass on small expected times), its mirror for
// S-skewed (mass on large expected times) and an even split for uniform.
// All generation is seedable and bit-for-bit reproducible.
package workload

import (
	"fmt"
	"math"
	"sort"

	"tcsa/internal/core"
)

// Distribution names a group-size shape from the paper's Figure 3.
type Distribution int

const (
	// Uniform spreads pages evenly across groups.
	Uniform Distribution = iota
	// Normal concentrates pages on middle expected-time groups (bell).
	Normal
	// LSkewed concentrates pages on small expected-time groups (the "L"
	// shape: tall on the left, decaying right).
	LSkewed
	// SSkewed concentrates pages on large expected-time groups (mirror of
	// LSkewed).
	SSkewed
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Normal:
		return "normal"
	case LSkewed:
		return "L-skewed"
	case SSkewed:
		return "S-skewed"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// ParseDistribution maps common spellings ("uniform", "normal", "lskew",
// "l-skewed", "sskew", "s-skewed") to a Distribution.
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "normal":
		return Normal, nil
	case "lskew", "l-skew", "lskewed", "l-skewed":
		return LSkewed, nil
	case "sskew", "s-skew", "sskewed", "s-skewed":
		return SSkewed, nil
	default:
		return 0, fmt.Errorf("workload: unknown distribution %q", s)
	}
}

// Distributions lists all four shapes in the paper's Figure 5 order.
func Distributions() []Distribution {
	return []Distribution{Normal, LSkewed, SSkewed, Uniform}
}

// skewRatio is the per-group geometric decay of the skewed shapes; 0.6
// yields the pronounced-but-not-degenerate skew of the paper's Figure 3
// sketches.
const skewRatio = 0.6

// GroupCounts returns the per-group page counts for distribution d over h
// groups and n total pages. Counts are >= 1 per group, sum exactly to n and
// are deterministic. It fails when n < h (cannot give every group a page).
func GroupCounts(d Distribution, h, n int) ([]int, error) {
	if h < 1 {
		return nil, fmt.Errorf("workload: %d groups", h)
	}
	if n < h {
		return nil, fmt.Errorf("workload: %d pages cannot cover %d groups", n, h)
	}
	weights := make([]float64, h)
	switch d {
	case Uniform:
		for i := range weights {
			weights[i] = 1
		}
	case Normal:
		mu := float64(h+1) / 2
		sigma := float64(h) / 4
		for i := range weights {
			x := float64(i+1) - mu
			weights[i] = math.Exp(-x * x / (2 * sigma * sigma))
		}
	case LSkewed:
		w := 1.0
		for i := range weights {
			weights[i] = w
			w *= skewRatio
		}
	case SSkewed:
		w := 1.0
		for i := h - 1; i >= 0; i-- {
			weights[i] = w
			w *= skewRatio
		}
	default:
		return nil, fmt.Errorf("workload: unknown distribution %v", d)
	}
	return apportion(weights, n)
}

// GroupSet builds the complete instance: counts from GroupCounts attached
// to geometric expected times t_i = t1 * c^(i-1).
func GroupSet(d Distribution, h, n, t1, c int) (*core.GroupSet, error) {
	counts, err := GroupCounts(d, h, n)
	if err != nil {
		return nil, err
	}
	return core.Geometric(t1, c, counts)
}

// apportion scales non-negative weights to integer counts summing exactly
// to n with every count >= 1, using largest-remainder rounding with
// deterministic index tie-break.
func apportion(weights []float64, n int) ([]int, error) {
	h := len(weights)
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("workload: invalid weight %f", w)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("workload: all-zero weights")
	}
	counts := make([]int, h)
	remainders := make([]float64, h)
	assigned := 0
	// Reserve one page per group, apportion the rest proportionally.
	spare := n - h
	for i, w := range weights {
		exact := w / total * float64(spare)
		counts[i] = 1 + int(exact)
		remainders[i] = exact - math.Floor(exact)
		assigned += counts[i]
	}
	// Distribute leftover pages by largest remainder, index-ascending ties.
	order := make([]int, h)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return remainders[order[a]] > remainders[order[b]] })
	for k := 0; assigned < n; k++ {
		counts[order[k%h]]++
		assigned++
	}
	return counts, nil
}
