package workload

import (
	"math"
	"testing"

	"tcsa/internal/core"
)

func streamGS(t *testing.T) *core.GroupSet {
	t.Helper()
	return core.MustGroupSet([]core.Group{{Time: 2, Count: 3}, {Time: 4, Count: 5}, {Time: 8, Count: 3}})
}

// collect materialises a stream through one cursor, shard by shard.
func collect(t *testing.T, s Stream) []Request {
	t.Helper()
	out := make([]Request, 0, s.Count())
	cur := s.NewCursor()
	var r Request
	for k := 0; k < s.Shards(); k++ {
		cur.Seek(k)
		for cur.Next(&r) {
			out = append(out, r)
		}
	}
	if len(out) != s.Count() {
		t.Fatalf("stream yielded %d of %d requests", len(out), s.Count())
	}
	return out
}

func requireSameRequests(t *testing.T, label string, got, want []Request) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d requests, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Page != want[i].Page ||
			math.Float64bits(got[i].Arrival) != math.Float64bits(want[i].Arrival) {
			t.Fatalf("%s: request %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestStreamMatchesGenerateRequests: for counts within one shard, NewStream
// replays GenerateRequests draw for draw (uniform and Zipf), which is what
// keeps experiment checksums frozen.
func TestStreamMatchesGenerateRequests(t *testing.T) {
	gs := streamGS(t)
	cfgs := []RequestConfig{
		{Count: 3000, Seed: 5},
		{Count: ShardSize, Seed: 6},
		{Count: 1, Seed: 7},
		{Count: 0, Seed: 8},
		{Count: 2500, Seed: 9, Choice: ZipfPages, Theta: 0.8},
		{Count: 2500, Seed: 10, Choice: ZipfPages}, // theta defaulting
	}
	for _, cfg := range cfgs {
		want, err := GenerateRequests(gs, 44, cfg)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := NewStream(gs, 44, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if stream.Sorted() {
			t.Errorf("cfg %+v: uniform arrivals reported sorted", cfg)
		}
		requireSameRequests(t, "stream", collect(t, stream), want)
	}
}

// TestStreamShardZeroIsGeneratePrefix: for multi-shard streams, shard 0 is
// the exact ShardSize-long prefix GenerateRequests produces with the same
// seed, and later shards decorrelate but stay deterministic.
func TestStreamShardZeroIsGeneratePrefix(t *testing.T) {
	gs := streamGS(t)
	cfg := RequestConfig{Count: ShardSize + 5000, Seed: 42}
	stream, err := NewStream(gs, 44, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stream.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", stream.Shards())
	}
	all := collect(t, stream)
	prefixCfg := cfg
	prefixCfg.Count = ShardSize
	want, err := GenerateRequests(gs, 44, prefixCfg)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRequests(t, "shard 0", all[:ShardSize], want)

	// Re-seeking any shard on a fresh cursor replays it identically.
	cur := stream.NewCursor()
	cur.Seek(1)
	var r Request
	for i := ShardSize; cur.Next(&r); i++ {
		if r != all[i] {
			t.Fatalf("re-seeked request %d = %+v, want %+v", i, r, all[i])
		}
	}

	// Shard 1 must not replay shard 0's draws (seed decorrelation).
	same := 0
	for i := 0; i < 5000; i++ {
		if all[i] == all[ShardSize+i] {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d of 5000 shard-1 requests duplicate shard 0", same)
	}
}

// TestPoissonStreamMatchesGenerate: a single-shard Poisson stream replays
// GeneratePoissonRequests; multi-shard streams restart each shard's clock
// at its expected offset and stay sorted within every shard.
func TestPoissonStreamMatchesGenerate(t *testing.T) {
	gs := streamGS(t)
	cfg := PoissonConfig{RequestConfig: RequestConfig{Count: 4000, Seed: 14}, Rate: 0.5}
	want, err := GeneratePoissonRequests(gs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := NewPoissonStream(gs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !stream.Sorted() {
		t.Error("poisson stream not marked sorted")
	}
	requireSameRequests(t, "poisson", collect(t, stream), want)

	big := PoissonConfig{RequestConfig: RequestConfig{Count: 2*ShardSize + 100, Seed: 15}, Rate: 2}
	bs, err := NewPoissonStream(gs, big)
	if err != nil {
		t.Fatal(err)
	}
	all := collect(t, bs)
	for k := 0; k < bs.Shards(); k++ {
		start := k * ShardSize
		end := start + ShardSize
		if end > len(all) {
			end = len(all)
		}
		for i := start + 1; i < end; i++ {
			if all[i].Arrival < all[i-1].Arrival {
				t.Fatalf("shard %d not sorted at %d: %f < %f", k, i, all[i].Arrival, all[i-1].Arrival)
			}
		}
		// The shard clock starts at the expected offset, so arrival times
		// track the configured rate across shards.
		if want := float64(start) / big.Rate; all[start].Arrival < want {
			t.Errorf("shard %d first arrival %f before expected offset %f", k, all[start].Arrival, want)
		}
	}
}

func TestStreamValidation(t *testing.T) {
	gs := streamGS(t)
	if _, err := NewStream(nil, 44, RequestConfig{Count: 1}); err == nil {
		t.Error("nil group set accepted")
	}
	if _, err := NewStream(gs, 44, RequestConfig{Count: -1}); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := NewStream(gs, 0, RequestConfig{Count: 1}); err == nil {
		t.Error("zero cycle accepted")
	}
	if _, err := NewStream(gs, 44, RequestConfig{Count: 1, Choice: ZipfPages, Theta: 2}); err == nil {
		t.Error("zipf theta 2 accepted")
	}
	if _, err := NewStream(gs, 44, RequestConfig{Count: 1, Choice: PageChoice(9)}); err == nil {
		t.Error("unknown page choice accepted")
	}
	if _, err := NewPoissonStream(nil, PoissonConfig{RequestConfig: RequestConfig{Count: 1}, Rate: 1}); err == nil {
		t.Error("nil group set accepted (poisson)")
	}
	if _, err := NewPoissonStream(gs, PoissonConfig{RequestConfig: RequestConfig{Count: -1}, Rate: 1}); err == nil {
		t.Error("negative count accepted (poisson)")
	}
	if _, err := NewPoissonStream(gs, PoissonConfig{RequestConfig: RequestConfig{Count: 1}}); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestSliceStream(t *testing.T) {
	sorted := []Request{{Page: 0, Arrival: 1}, {Page: 1, Arrival: 1}, {Page: 2, Arrival: 3}}
	if s := SliceStream(sorted); !s.Sorted() {
		t.Error("non-decreasing slice not detected as sorted")
	}
	unsorted := []Request{{Page: 0, Arrival: 2}, {Page: 1, Arrival: 1}}
	if s := SliceStream(unsorted); s.Sorted() {
		t.Error("descending slice reported sorted")
	}
	empty := SliceStream(nil)
	if empty.Count() != 0 || empty.Shards() != 0 || !empty.Sorted() {
		t.Errorf("empty slice stream: count=%d shards=%d sorted=%v", empty.Count(), empty.Shards(), empty.Sorted())
	}
	requireSameRequests(t, "slice", collect(t, SliceStream(sorted)), sorted)

	// Seek past the end is a no-op cursor.
	cur := SliceStream(sorted).NewCursor()
	cur.Seek(5)
	var r Request
	if cur.Next(&r) {
		t.Error("cursor past the end yielded a request")
	}
}

func TestShardSeed(t *testing.T) {
	if shardSeed(123, 0) != 123 {
		t.Error("shard 0 must use the stream seed verbatim")
	}
	seen := map[int64]int{}
	for k := 0; k < 1000; k++ {
		seen[shardSeed(1, k)]++
	}
	if len(seen) != 1000 {
		t.Errorf("%d distinct seeds over 1000 shards", len(seen))
	}
	if shardSeed(1, 5) == shardSeed(2, 5) {
		t.Error("different stream seeds collide on the same shard")
	}
}

// TestPoissonZipfPages: Poisson generation honours the Zipf page-choice
// model — the generator and the stream agree draw for draw, the skew
// actually lands on low page IDs, and the uniform path's draw sequence is
// untouched (gap first, then page, same bits as before Zipf support).
func TestPoissonZipfPages(t *testing.T) {
	gs := streamGS(t)
	zipf := PoissonConfig{
		RequestConfig: RequestConfig{Count: 4000, Seed: 31, Choice: ZipfPages, Theta: 0.9},
		Rate:          2,
	}
	want, err := GeneratePoissonRequests(gs, zipf)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := NewPoissonStream(gs, zipf)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRequests(t, "poisson-zipf", collect(t, stream), want)

	// The skew is real: page 0 must dominate the top page by a wide margin
	// (uniform would give both ~1/11 of the stream).
	counts := make([]int, gs.Pages())
	for _, r := range want {
		counts[r.Page]++
	}
	if counts[0] < 2*counts[gs.Pages()-1] {
		t.Errorf("zipf skew missing: page 0 drew %d, page %d drew %d",
			counts[0], gs.Pages()-1, counts[gs.Pages()-1])
	}

	// Uniform Poisson arrivals are bit-identical whether or not the Choice
	// field exists: same gaps, same pages.
	uni := PoissonConfig{RequestConfig: RequestConfig{Count: 1000, Seed: 31}, Rate: 2}
	a, err := GeneratePoissonRequests(gs, uni)
	if err != nil {
		t.Fatal(err)
	}
	uni.Choice = UniformPages // explicit zero value: must not change draws
	b, err := GeneratePoissonRequests(gs, uni)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRequests(t, "uniform-poisson", b, a)

	// Zipf and uniform share the arrival clock draw order, so their
	// arrival instants coincide bit for bit — only pages differ.
	zc := uni
	zc.Choice, zc.Theta = ZipfPages, 0.9
	z, err := GeneratePoissonRequests(gs, zc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range z {
		if math.Float64bits(z[i].Arrival) != math.Float64bits(a[i].Arrival) {
			t.Fatalf("arrival %d drifted under zipf: %v vs %v", i, z[i].Arrival, a[i].Arrival)
		}
	}

	// Invalid configurations are rejected by both construction paths.
	bad := PoissonConfig{RequestConfig: RequestConfig{Count: 1, Choice: ZipfPages, Theta: 2}, Rate: 1}
	if _, err := GeneratePoissonRequests(gs, bad); err == nil {
		t.Error("theta 2 accepted by generator")
	}
	if _, err := NewPoissonStream(gs, bad); err == nil {
		t.Error("theta 2 accepted by stream")
	}
	bad.Choice = PageChoice(9)
	if _, err := NewPoissonStream(gs, bad); err == nil {
		t.Error("unknown page choice accepted by stream")
	}
}
