package workload

import (
	"fmt"
	"math"
	"math/rand"

	"tcsa/internal/core"
)

// Request is one client access: the client tunes in at Arrival (a
// continuous instant within one broadcast cycle, in slots) and waits for
// page Page.
type Request struct {
	Page    core.PageID
	Arrival float64
}

// PageChoice selects how requests pick their page.
type PageChoice int

const (
	// UniformPages matches the paper's model: every page equally likely
	// (prob_access = 1/n).
	UniformPages PageChoice = iota
	// ZipfPages skews access toward low page IDs (i.e. tight expected
	// times, since IDs are assigned in ascending t order) with parameter
	// Theta; an extension for studying non-uniform popularity.
	ZipfPages
)

// RequestConfig parameterises request generation.
type RequestConfig struct {
	// Count is the number of requests (the paper's default is 3000).
	Count int
	// Choice picks the page-selection model; default UniformPages.
	Choice PageChoice
	// Theta is the Zipf skew in (0, 1]; used only by ZipfPages. 0 defaults
	// to 0.8.
	Theta float64
	// Seed makes the stream reproducible.
	Seed int64
}

// GenerateRequests draws cfg.Count requests against an instance with n
// pages and the given cycle length. Arrivals are uniform over the cycle,
// matching the "client may start to listen at any time" model.
func GenerateRequests(gs *core.GroupSet, cycleLen int, cfg RequestConfig) ([]Request, error) {
	if gs == nil {
		return nil, fmt.Errorf("%w: nil group set", core.ErrInvalidGroupSet)
	}
	if cfg.Count < 0 {
		return nil, fmt.Errorf("workload: negative request count %d", cfg.Count)
	}
	if cycleLen < 1 {
		return nil, fmt.Errorf("workload: cycle length %d", cycleLen)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := gs.Pages()

	var pick func() core.PageID
	switch cfg.Choice {
	case UniformPages:
		pick = func() core.PageID { return core.PageID(rng.Intn(n)) }
	case ZipfPages:
		theta := cfg.Theta
		if theta == 0 {
			theta = 0.8
		}
		if theta < 0 || theta > 1 {
			return nil, fmt.Errorf("workload: zipf theta %f outside (0,1]", theta)
		}
		cdf := zipfCDF(n, theta)
		pick = func() core.PageID { return core.PageID(searchCDF(cdf, rng.Float64())) }
	default:
		return nil, fmt.Errorf("workload: unknown page choice %d", cfg.Choice)
	}

	reqs := make([]Request, cfg.Count)
	for i := range reqs {
		reqs[i] = Request{
			Page:    pick(),
			Arrival: rng.Float64() * float64(cycleLen),
		}
	}
	return reqs, nil
}

// zipfCDF precomputes the cumulative distribution of a Zipf(theta) law over
// ranks 1..n (probability of rank k proportional to 1/k^theta).
func zipfCDF(n int, theta float64) []float64 {
	cdf := make([]float64, n)
	var sum float64
	for k := 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), theta)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return cdf
}

// searchCDF returns the first index whose cumulative probability covers u.
func searchCDF(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// AccessProbabilities returns the per-page access probability vector the
// request stream approximates, for use with Analysis.WeightedAvgDelay.
func AccessProbabilities(gs *core.GroupSet, cfg RequestConfig) ([]float64, error) {
	if gs == nil {
		return nil, fmt.Errorf("%w: nil group set", core.ErrInvalidGroupSet)
	}
	n := gs.Pages()
	prob := make([]float64, n)
	switch cfg.Choice {
	case UniformPages:
		for i := range prob {
			prob[i] = 1 / float64(n)
		}
	case ZipfPages:
		theta := cfg.Theta
		if theta == 0 {
			theta = 0.8
		}
		var sum float64
		for k := 1; k <= n; k++ {
			prob[k-1] = 1 / math.Pow(float64(k), theta)
			sum += prob[k-1]
		}
		for i := range prob {
			prob[i] /= sum
		}
	default:
		return nil, fmt.Errorf("workload: unknown page choice %d", cfg.Choice)
	}
	return prob, nil
}

// PoissonConfig extends RequestConfig for arrival processes beyond the
// single-cycle uniform default: a Poisson stream whose exponential
// inter-arrival gaps accumulate from time 0, spanning as many broadcast
// cycles as the rate and count imply.
type PoissonConfig struct {
	RequestConfig
	// Rate is the mean number of arrivals per slot; must be > 0.
	Rate float64
}

// GeneratePoissonRequests draws cfg.Count requests with Poisson arrivals
// and the configured page-choice model (UniformPages or ZipfPages, as in
// GenerateRequests). Arrival instants are absolute simulation times (they
// exceed one cycle for long streams); consumers treat the program as
// cyclic. The draw order is gap first, then page, so uniform streams are
// bit-identical to those generated before Zipf support existed.
func GeneratePoissonRequests(gs *core.GroupSet, cfg PoissonConfig) ([]Request, error) {
	if gs == nil {
		return nil, fmt.Errorf("%w: nil group set", core.ErrInvalidGroupSet)
	}
	if cfg.Count < 0 {
		return nil, fmt.Errorf("workload: negative request count %d", cfg.Count)
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("workload: poisson rate %f", cfg.Rate)
	}
	cdf, err := poissonPageCDF(gs.Pages(), cfg.RequestConfig)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := gs.Pages()
	reqs := make([]Request, cfg.Count)
	now := 0.0
	for i := range reqs {
		now += rng.ExpFloat64() / cfg.Rate
		page := core.PageID(0)
		if cdf != nil {
			page = core.PageID(searchCDF(cdf, rng.Float64()))
		} else {
			page = core.PageID(rng.Intn(n))
		}
		reqs[i] = Request{Page: page, Arrival: now}
	}
	return reqs, nil
}

// poissonPageCDF resolves a Poisson stream's page-choice model: nil for
// UniformPages (the rng.Intn fast path, kept bit-identical to historical
// streams) or the Zipf CDF for ZipfPages.
func poissonPageCDF(n int, cfg RequestConfig) ([]float64, error) {
	switch cfg.Choice {
	case UniformPages:
		return nil, nil
	case ZipfPages:
		theta := cfg.Theta
		if theta == 0 {
			theta = 0.8
		}
		if theta < 0 || theta > 1 {
			return nil, fmt.Errorf("workload: zipf theta %f outside (0,1]", theta)
		}
		return zipfCDF(n, theta), nil
	default:
		return nil, fmt.Errorf("workload: unknown page choice %d", cfg.Choice)
	}
}
