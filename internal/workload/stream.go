package workload

import (
	"fmt"
	"math/rand"

	"tcsa/internal/core"
)

// ShardSize is the number of requests in one stream shard. It is a fixed
// power of two so that shard boundaries — and therefore the per-shard RNG
// seeds and the order partial metrics fold in — never depend on the worker
// count: measuring a stream with 1, 2 or 8 workers visits the exact same
// shards and merges them in the exact same order. It also pins backward
// compatibility: a stream of at most ShardSize requests occupies a single
// shard whose RNG sequence and accumulation order are identical to the
// historical slice-based path, so Figure 5 checksums are preserved
// bit-for-bit.
const ShardSize = 1 << 16

// Stream is a deterministic request source, consumed in fixed-size shards
// so it can be generated on the fly instead of allocated up front. Shard k
// covers requests [k*ShardSize, min((k+1)*ShardSize, Count())); any cursor
// positioned on shard k yields exactly the same requests.
type Stream interface {
	// Count is the total number of requests in the stream.
	Count() int
	// Shards is ceil(Count/ShardSize): the number of independently
	// seekable shards.
	Shards() int
	// Sorted reports whether arrivals are non-decreasing within every
	// shard (true for Poisson streams and pre-sorted slices), which lets
	// the measurement engine walk appearance columns with a cursor
	// instead of a per-request binary search.
	Sorted() bool
	// NewCursor returns a fresh cursor. Cursors are independent: one per
	// worker, reused across shards via Seek, so steady-state measurement
	// allocates nothing.
	NewCursor() Cursor
}

// Cursor iterates one shard at a time.
type Cursor interface {
	// Seek positions the cursor at the start of shard k, resetting any
	// internal generator state deterministically.
	Seek(shard int)
	// Next writes the next request of the current shard into r and
	// reports whether one was produced; false means the shard is done.
	Next(r *Request) bool
}

// shardSeed derives the RNG seed of shard k from the stream seed. Shard 0
// uses the seed verbatim so a single-shard stream replays GenerateRequests
// exactly; later shards decorrelate through a splitmix64 finalizer over
// seed + k*goldenGamma (the splitmix64 increment), which is a bijection per
// shard index and avalanches every bit.
func shardSeed(seed int64, k int) int64 {
	if k == 0 {
		return seed
	}
	z := uint64(seed) + uint64(k)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

func shardCount(count int) int {
	return (count + ShardSize - 1) / ShardSize
}

// shardLen returns the request count of shard k of a count-long stream.
func shardLen(count, k int) int {
	start := k * ShardSize
	if start >= count {
		return 0
	}
	if n := count - start; n < ShardSize {
		return n
	}
	return ShardSize
}

// genKind distinguishes the generator families a genStream can replay.
type genKind int

const (
	genUniform genKind = iota
	genZipf
	genPoisson
)

// genStream generates uniform, Zipf or Poisson request streams shard by
// shard, mirroring GenerateRequests / GeneratePoissonRequests draw for
// draw: shard 0 of a stream is bit-for-bit the prefix those functions
// return for the same configuration.
type genStream struct {
	kind  genKind
	count int
	pages int
	cycle float64   // slot span of one broadcast cycle (uniform/zipf)
	cdf   []float64 // Zipf CDF (zipf, and poisson with ZipfPages)
	rate  float64   // arrivals per slot (poisson only)
	seed  int64
}

// NewStream builds an on-the-fly equivalent of GenerateRequests: same
// validation, same distribution, and — for streams of at most ShardSize
// requests — the same draws in the same order.
func NewStream(gs *core.GroupSet, cycleLen int, cfg RequestConfig) (Stream, error) {
	if gs == nil {
		return nil, fmt.Errorf("%w: nil group set", core.ErrInvalidGroupSet)
	}
	if cfg.Count < 0 {
		return nil, fmt.Errorf("workload: negative request count %d", cfg.Count)
	}
	if cycleLen < 1 {
		return nil, fmt.Errorf("workload: cycle length %d", cycleLen)
	}
	s := &genStream{
		count: cfg.Count,
		pages: gs.Pages(),
		cycle: float64(cycleLen),
		seed:  cfg.Seed,
	}
	switch cfg.Choice {
	case UniformPages:
		s.kind = genUniform
	case ZipfPages:
		theta := cfg.Theta
		if theta == 0 {
			theta = 0.8
		}
		if theta < 0 || theta > 1 {
			return nil, fmt.Errorf("workload: zipf theta %f outside (0,1]", theta)
		}
		s.kind = genZipf
		s.cdf = zipfCDF(s.pages, theta)
	default:
		return nil, fmt.Errorf("workload: unknown page choice %d", cfg.Choice)
	}
	return s, nil
}

// NewPoissonStream builds an on-the-fly equivalent of
// GeneratePoissonRequests, honouring the configured page-choice model.
// Shard 0 replays it draw for draw; shard k > 0 restarts the arrival clock
// at the expected offset k*ShardSize/Rate, so the stream keeps the
// configured rate while every shard stays independently seekable. Arrivals
// are non-decreasing within each shard (Sorted is true).
func NewPoissonStream(gs *core.GroupSet, cfg PoissonConfig) (Stream, error) {
	if gs == nil {
		return nil, fmt.Errorf("%w: nil group set", core.ErrInvalidGroupSet)
	}
	if cfg.Count < 0 {
		return nil, fmt.Errorf("workload: negative request count %d", cfg.Count)
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("workload: poisson rate %f", cfg.Rate)
	}
	cdf, err := poissonPageCDF(gs.Pages(), cfg.RequestConfig)
	if err != nil {
		return nil, err
	}
	return &genStream{
		kind:  genPoisson,
		count: cfg.Count,
		pages: gs.Pages(),
		cdf:   cdf,
		rate:  cfg.Rate,
		seed:  cfg.Seed,
	}, nil
}

func (s *genStream) Count() int  { return s.count }
func (s *genStream) Shards() int { return shardCount(s.count) }
func (s *genStream) Sorted() bool {
	return s.kind == genPoisson
}

func (s *genStream) NewCursor() Cursor {
	return &genCursor{stream: s, rng: rand.New(rand.NewSource(s.seed))}
}

type genCursor struct {
	stream    *genStream
	rng       *rand.Rand
	remaining int
	now       float64 // Poisson arrival clock
}

func (c *genCursor) Seek(shard int) {
	s := c.stream
	c.rng.Seed(shardSeed(s.seed, shard))
	c.remaining = shardLen(s.count, shard)
	if s.kind == genPoisson {
		c.now = float64(shard) * ShardSize / s.rate
	}
}

func (c *genCursor) Next(r *Request) bool {
	if c.remaining <= 0 {
		return false
	}
	c.remaining--
	s := c.stream
	// Draw order matches GenerateRequests/GeneratePoissonRequests exactly:
	// page first for uniform/zipf, inter-arrival gap first for Poisson.
	switch s.kind {
	case genUniform:
		r.Page = core.PageID(c.rng.Intn(s.pages))
		r.Arrival = c.rng.Float64() * s.cycle
	case genZipf:
		r.Page = core.PageID(searchCDF(s.cdf, c.rng.Float64()))
		r.Arrival = c.rng.Float64() * s.cycle
	default: // genPoisson
		c.now += c.rng.ExpFloat64() / s.rate
		if s.cdf != nil {
			r.Page = core.PageID(searchCDF(s.cdf, c.rng.Float64()))
		} else {
			r.Page = core.PageID(c.rng.Intn(s.pages))
		}
		r.Arrival = c.now
	}
	return true
}

// sliceStream adapts an already materialised request slice to the Stream
// interface, so MeasureAnalyzed and friends run on the same engine.
type sliceStream struct {
	reqs   []Request
	sorted bool
}

// SliceStream wraps reqs as a Stream. Sortedness (non-decreasing arrivals)
// is detected with one linear scan at construction; the slice is not
// copied and must not be mutated while cursors are live.
func SliceStream(reqs []Request) Stream {
	sorted := true
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			sorted = false
			break
		}
	}
	return &sliceStream{reqs: reqs, sorted: sorted}
}

func (s *sliceStream) Count() int   { return len(s.reqs) }
func (s *sliceStream) Shards() int  { return shardCount(len(s.reqs)) }
func (s *sliceStream) Sorted() bool { return s.sorted }

func (s *sliceStream) NewCursor() Cursor {
	return &sliceCursor{reqs: s.reqs}
}

type sliceCursor struct {
	reqs []Request
	pos  int
	end  int
}

func (c *sliceCursor) Seek(shard int) {
	c.pos = shard * ShardSize
	if c.pos > len(c.reqs) {
		c.pos = len(c.reqs)
	}
	c.end = c.pos + shardLen(len(c.reqs), shard)
}

func (c *sliceCursor) Next(r *Request) bool {
	if c.pos >= c.end {
		return false
	}
	*r = c.reqs[c.pos]
	c.pos++
	return true
}
