package multiitem_test

import (
	"fmt"

	"tcsa/internal/core"
	"tcsa/internal/multiitem"
)

// Two wanted pages collide at column 1 on different channels; page 0 also
// appears at column 2. The exact planner takes page 1 first and finishes
// at column 2; the greedy order would pay a full extra cycle.
func ExampleOptimal() {
	gs := core.MustGroupSet([]core.Group{{Time: 16, Count: 2}})
	prog, _ := core.NewProgram(gs, 2, 10)
	_ = prog.Place(0, 1, 0)
	_ = prog.Place(0, 2, 0)
	_ = prog.Place(1, 1, 1)
	a := core.Analyze(prog)

	optimal, _ := multiitem.Optimal(a, []core.PageID{0, 1}, 0)
	greedy, _ := multiitem.Greedy(a, []core.PageID{0, 1}, 0)
	fmt.Printf("optimal: order %v, total %.0f slots\n", optimal.Order, optimal.Total)
	fmt.Printf("greedy:  order %v, total %.0f slots\n", greedy.Order, greedy.Total)
	// Output:
	// optimal: order [1 0], total 2 slots
	// greedy:  order [0 1], total 11 slots
}
