// Package multiitem plans the retrieval of a *set* of pages from a
// broadcast program with a single tuner — the generalisation the paper's
// model excludes ("every access of a client is only one data page") and
// that the same authors study in "Benefit-oriented data retrieval in data
// broadcast environments" (DASFAA '04, the paper's reference [5]).
//
// A single-tuner client can capture at most one page per slot; when two
// wanted pages share a column on different channels, any order loses a
// full cycle on one of them, so retrieval order matters. Two planners are
// provided:
//
//   - Greedy: repeatedly grab the wanted page with the earliest next
//     appearance. Fast, usually right, provably not always (see the
//     package tests for a two-page counterexample).
//   - Optimal: exact bitmask dynamic programming over (subset, last page),
//     exponential in the query size (bounded by MaxOptimalQuery).
//
// Both return the full retrieval plan: order, per-page completion instants
// and total span from tune-in.
package multiitem

import (
	"fmt"
	"math"
	"sort"

	"tcsa/internal/core"
)

// MaxOptimalQuery bounds Optimal's query size (the DP holds
// 2^q * q float64 states).
const MaxOptimalQuery = 16

// Plan is a retrieval schedule for one query.
type Plan struct {
	// Order lists the pages in retrieval order.
	Order []core.PageID
	// Times[i] is the completion instant of Order[i], measured from the
	// start of the cycle the client tuned in during (monotone increasing,
	// may exceed one cycle length).
	Times []float64
	// Total is the span from the arrival instant to the last completion.
	Total float64
}

// Greedy plans the query by always fetching the wanted page whose next
// appearance comes first; ties break toward the smaller page ID.
func Greedy(a *core.Analysis, query []core.PageID, arrival float64) (*Plan, error) {
	if err := validate(a, query, arrival); err != nil {
		return nil, err
	}
	remaining := append([]core.PageID(nil), query...)
	sort.Slice(remaining, func(i, j int) bool { return remaining[i] < remaining[j] })

	plan := &Plan{}
	now := arrival
	first := true
	for len(remaining) > 0 {
		bestIdx := -1
		bestAt := math.Inf(1)
		for i, p := range remaining {
			at := nextReception(a, p, now, first)
			if at < bestAt {
				bestAt = at
				bestIdx = i
			}
		}
		p := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		plan.Order = append(plan.Order, p)
		plan.Times = append(plan.Times, bestAt)
		now = bestAt
		first = false
	}
	plan.Total = now - arrival
	return plan, nil
}

// Optimal plans the query exactly by dynamic programming over
// (received-subset, last-received) states.
func Optimal(a *core.Analysis, query []core.PageID, arrival float64) (*Plan, error) {
	if err := validate(a, query, arrival); err != nil {
		return nil, err
	}
	q := len(query)
	if q > MaxOptimalQuery {
		return nil, fmt.Errorf("multiitem: query of %d pages exceeds the optimal-planner bound %d", q, MaxOptimalQuery)
	}
	size := 1 << q
	const unset = -1.0
	// f[mask*q+j]: earliest completion of subset mask with query[j] last.
	f := make([]float64, size*q)
	parent := make([]int8, size*q)
	for i := range f {
		f[i] = unset
	}
	for j := 0; j < q; j++ {
		f[(1<<j)*q+j] = nextReception(a, query[j], arrival, true)
		parent[(1<<j)*q+j] = -1
	}
	for mask := 1; mask < size; mask++ {
		for j := 0; j < q; j++ {
			cur := f[mask*q+j]
			if mask&(1<<j) == 0 || cur == unset {
				continue
			}
			for k := 0; k < q; k++ {
				if mask&(1<<k) != 0 {
					continue
				}
				next := mask | 1<<k
				at := nextReception(a, query[k], cur, false)
				if f[next*q+k] == unset || at < f[next*q+k] {
					f[next*q+k] = at
					parent[next*q+k] = int8(j)
				}
			}
		}
	}
	full := size - 1
	bestJ, bestAt := -1, math.Inf(1)
	for j := 0; j < q; j++ {
		if v := f[full*q+j]; v != unset && v < bestAt {
			bestAt = v
			bestJ = j
		}
	}
	if bestJ < 0 {
		return nil, fmt.Errorf("multiitem: no feasible plan (page never broadcast?)")
	}

	// Reconstruct the order.
	plan := &Plan{
		Order: make([]core.PageID, q),
		Times: make([]float64, q),
		Total: bestAt - arrival,
	}
	mask, j := full, bestJ
	for i := q - 1; i >= 0; i-- {
		plan.Order[i] = query[j]
		plan.Times[i] = f[mask*q+j]
		prev := parent[mask*q+j]
		mask &^= 1 << j
		j = int(prev)
	}
	return plan, nil
}

// nextReception returns the absolute completion instant of the next
// appearance of page p at or after instant t. The first reception may
// happen at the tune-in column; later ones must be at a strictly later
// column (one page per slot).
func nextReception(a *core.Analysis, p core.PageID, t float64, first bool) float64 {
	L := float64(a.Program().Length())
	from := t
	if !first {
		// Completions land on integer columns; the next capture needs a
		// strictly later column.
		from = t + 0.5
	}
	u := math.Mod(from, L)
	return from + a.NextAfter(p, u)
}

func validate(a *core.Analysis, query []core.PageID, arrival float64) error {
	if a == nil {
		return fmt.Errorf("multiitem: nil analysis")
	}
	if len(query) == 0 {
		return fmt.Errorf("multiitem: empty query")
	}
	if arrival < 0 {
		return fmt.Errorf("multiitem: negative arrival %f", arrival)
	}
	n := a.Program().GroupSet().Pages()
	seen := map[core.PageID]bool{}
	for _, p := range query {
		if p < 0 || int(p) >= n {
			return fmt.Errorf("%w: %d", core.ErrPageRange, p)
		}
		if seen[p] {
			return fmt.Errorf("multiitem: duplicate page %d in query", p)
		}
		seen[p] = true
	}
	return nil
}

// AverageTotal Monte-Carlo-averages a planner's total retrieval span over
// uniformly random arrivals (deterministic grid sampling: samples evenly
// spaced arrival instants, so results are reproducible without a seed).
func AverageTotal(a *core.Analysis, query []core.PageID,
	planner func(*core.Analysis, []core.PageID, float64) (*Plan, error), samples int) (float64, error) {
	if samples < 1 {
		return 0, fmt.Errorf("multiitem: %d samples", samples)
	}
	L := float64(a.Program().Length())
	var sum float64
	for s := 0; s < samples; s++ {
		arrival := (float64(s) + 0.25) / float64(samples) * L
		plan, err := planner(a, query, arrival)
		if err != nil {
			return 0, err
		}
		sum += plan.Total
	}
	return sum / float64(samples), nil
}
