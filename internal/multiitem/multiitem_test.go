package multiitem

import (
	"math"
	"math/rand"
	"testing"

	"tcsa/internal/core"
	"tcsa/internal/pamad"
	"tcsa/internal/susc"
	"tcsa/internal/workload"
)

// buildAnalysis places pages at explicit (channel, column) cells.
func buildAnalysis(t *testing.T, gs *core.GroupSet, channels, length int, cells [][3]int) *core.Analysis {
	t.Helper()
	p, err := core.NewProgram(gs, channels, length)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if err := p.Place(c[0], c[1], core.PageID(c[2])); err != nil {
			t.Fatal(err)
		}
	}
	return core.Analyze(p)
}

func TestValidate(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 2}})
	a := buildAnalysis(t, gs, 1, 4, [][3]int{{0, 0, 0}, {0, 1, 1}})
	if _, err := Greedy(nil, []core.PageID{0}, 0); err == nil {
		t.Error("nil analysis accepted")
	}
	if _, err := Greedy(a, nil, 0); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := Greedy(a, []core.PageID{0}, -1); err == nil {
		t.Error("negative arrival accepted")
	}
	if _, err := Greedy(a, []core.PageID{9}, 0); err == nil {
		t.Error("out-of-range page accepted")
	}
	if _, err := Greedy(a, []core.PageID{0, 0}, 0); err == nil {
		t.Error("duplicate page accepted")
	}
	if _, err := Optimal(a, make([]core.PageID, MaxOptimalQuery+1), 0); err == nil {
		t.Error("oversized optimal query accepted")
	}
}

func TestSinglePageMatchesNextAfter(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 4, Count: 1}})
	a := buildAnalysis(t, gs, 1, 8, [][3]int{{0, 3, 0}})
	for _, arrival := range []float64{0, 1.5, 3, 3.5, 7.9} {
		want := a.NextAfter(0, arrival)
		g, err := Greedy(a, []core.PageID{0}, arrival)
		if err != nil {
			t.Fatal(err)
		}
		o, err := Optimal(a, []core.PageID{0}, arrival)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(g.Total-want) > 1e-9 || math.Abs(o.Total-want) > 1e-9 {
			t.Errorf("arrival %f: greedy %f optimal %f, want %f", arrival, g.Total, o.Total, want)
		}
	}
}

// TestGreedyTrap is the counterexample that motivates the DP: pages 0 and
// 1 collide at column 1 (different channels), page 0 also appears at
// column 2. Greedy's tie-break grabs page 0 at column 1 and pays a full
// cycle for page 1; the optimal order takes page 1 first and finishes at
// column 2.
func TestGreedyTrap(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 16, Count: 2}})
	a := buildAnalysis(t, gs, 2, 10, [][3]int{
		{0, 1, 0}, {0, 2, 0}, // page 0 at columns 1 and 2
		{1, 1, 1}, // page 1 only at column 1
	})
	g, err := Greedy(a, []core.PageID{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	o, err := Optimal(a, []core.PageID{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if o.Total != 2 {
		t.Errorf("optimal total = %f, want 2 (page1@1, page0@2)", o.Total)
	}
	if g.Total != 11 {
		t.Errorf("greedy total = %f, want 11 (page0@1, page1@11)", g.Total)
	}
	if o.Order[0] != 1 || o.Order[1] != 0 {
		t.Errorf("optimal order = %v, want [1 0]", o.Order)
	}
}

// TestOptimalNeverWorseThanGreedy on random PAMAD programs and queries.
func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	gs, err := workload.GroupSet(workload.Uniform, 4, 60, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := pamad.Build(gs, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := core.Analyze(prog)
	for trial := 0; trial < 150; trial++ {
		q := 1 + rng.Intn(6)
		query := randomQuery(rng, gs.Pages(), q)
		arrival := rng.Float64() * float64(prog.Length())
		g, err := Greedy(a, query, arrival)
		if err != nil {
			t.Fatal(err)
		}
		o, err := Optimal(a, query, arrival)
		if err != nil {
			t.Fatal(err)
		}
		if o.Total > g.Total+1e-9 {
			t.Fatalf("trial %d: optimal %f worse than greedy %f (query %v arrival %f)",
				trial, o.Total, g.Total, query, arrival)
		}
		checkPlan(t, a, query, arrival, g)
		checkPlan(t, a, query, arrival, o)
	}
}

// checkPlan verifies structural invariants: a permutation of the query,
// strictly increasing times, each reception at a real appearance column.
func checkPlan(t *testing.T, a *core.Analysis, query []core.PageID, arrival float64, p *Plan) {
	t.Helper()
	if len(p.Order) != len(query) || len(p.Times) != len(query) {
		t.Fatalf("plan sizes: %d/%d for query %d", len(p.Order), len(p.Times), len(query))
	}
	seen := map[core.PageID]bool{}
	for _, pg := range p.Order {
		seen[pg] = true
	}
	if len(seen) != len(query) {
		t.Fatalf("plan order %v is not a permutation of %v", p.Order, query)
	}
	L := a.Program().Length()
	prev := arrival - 1
	for i, at := range p.Times {
		if at < arrival {
			t.Fatalf("reception %d at %f before arrival %f", i, at, arrival)
		}
		if at <= prev {
			t.Fatalf("times not increasing: %v", p.Times)
		}
		prev = at
		// Completion instants are integer columns holding the page.
		col := int(at+0.5) % L
		found := false
		for ch := 0; ch < a.Program().Channels(); ch++ {
			if a.Program().At(ch, col) == p.Order[i] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("page %d 'received' at column %d where it is not broadcast", p.Order[i], col)
		}
	}
	if math.Abs(p.Total-(p.Times[len(p.Times)-1]-arrival)) > 1e-9 {
		t.Fatalf("Total %f inconsistent with last time %f", p.Total, p.Times[len(p.Times)-1])
	}
}

// TestOneDistinctColumnPerSlot: two receptions can never share a column.
func TestOneDistinctColumnPerSlot(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 8, Count: 3}})
	// All three pages share column 2 on three channels.
	a := buildAnalysis(t, gs, 3, 8, [][3]int{{0, 2, 0}, {1, 2, 1}, {2, 2, 2}})
	o, err := Optimal(a, []core.PageID{0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One per cycle: completions at 2, 10, 18.
	want := []float64{2, 10, 18}
	for i, w := range want {
		if math.Abs(o.Times[i]-w) > 1e-9 {
			t.Errorf("Times = %v, want %v", o.Times, want)
			break
		}
	}
}

func TestAverageTotal(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 4, Count: 2}})
	prog, err := susc.BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	a := core.Analyze(prog)
	query := []core.PageID{0, 1}
	gAvg, err := AverageTotal(a, query, Greedy, 64)
	if err != nil {
		t.Fatal(err)
	}
	oAvg, err := AverageTotal(a, query, Optimal, 64)
	if err != nil {
		t.Fatal(err)
	}
	if oAvg > gAvg+1e-9 {
		t.Errorf("average optimal %f worse than greedy %f", oAvg, gAvg)
	}
	if gAvg <= 0 {
		t.Errorf("average total %f", gAvg)
	}
	if _, err := AverageTotal(a, query, Greedy, 0); err == nil {
		t.Error("0 samples accepted")
	}
}

func randomQuery(rng *rand.Rand, n, q int) []core.PageID {
	perm := rng.Perm(n)
	query := make([]core.PageID, q)
	for i := 0; i < q; i++ {
		query[i] = core.PageID(perm[i])
	}
	return query
}
