package bindex

import (
	"math"
	"testing"

	"tcsa/internal/core"
	"tcsa/internal/susc"
)

func buildProgram(t *testing.T) *core.Program {
	t.Helper()
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 2}, {Time: 4, Count: 3}})
	prog, err := susc.BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestBuildValidation(t *testing.T) {
	prog := buildProgram(t)
	if _, err := Build(nil, Config{M: 1, IndexSlots: 1}); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := Build(prog, Config{M: 0, IndexSlots: 1}); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Build(prog, Config{M: 1, IndexSlots: 0}); err == nil {
		t.Error("index length 0 accepted")
	}
	if _, err := Build(prog, Config{M: 100, IndexSlots: 1}); err == nil {
		t.Error("m > cycle accepted")
	}
}

func TestBuildGeometry(t *testing.T) {
	prog := buildProgram(t) // cycle length 4
	ix, err := Build(prog, Config{M: 2, IndexSlots: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Length() != 4+2*3 {
		t.Errorf("Length = %d, want 10", ix.Length())
	}
	starts := ix.IndexStarts()
	// Segment 0 before original column 0 -> stretched 0; segment 1 before
	// original column 2 -> stretched 2+3 = 5.
	if len(starts) != 2 || starts[0] != 0 || starts[1] != 5 {
		t.Errorf("IndexStarts = %v, want [0 5]", starts)
	}
	wantData := []int{3, 4, 8, 9}
	for c, w := range wantData {
		if got := ix.DataColumn(c); got != w {
			t.Errorf("DataColumn(%d) = %d, want %d", c, got, w)
		}
	}
}

func TestBuildMEqualsL(t *testing.T) {
	prog := buildProgram(t)
	ix, err := Build(prog, Config{M: 4, IndexSlots: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Length() != 8 {
		t.Errorf("Length = %d, want 8", ix.Length())
	}
	want := []int{0, 2, 4, 6}
	for i, w := range want {
		if ix.IndexStarts()[i] != w {
			t.Errorf("IndexStarts = %v, want %v", ix.IndexStarts(), want)
			break
		}
	}
}

// TestTuningTimeConstant: the (1,m) protocol's tuning time is exactly
// probe + index + page regardless of m and the program.
func TestTuningTimeConstant(t *testing.T) {
	prog := buildProgram(t)
	for _, m := range []int{1, 2, 4} {
		ix, err := Build(prog, Config{M: m, IndexSlots: 2})
		if err != nil {
			t.Fatal(err)
		}
		got := ix.Analyze().TuningTime
		if want := float64(1 + 2 + 1); got != want {
			t.Errorf("m=%d: TuningTime = %f, want %f", m, got, want)
		}
	}
}

// TestIndexSavesEnergyCostsLatency: versus the baseline, indexing cuts
// tuning time but stretches access time.
func TestIndexSavesEnergyCostsLatency(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 16, Count: 30}})
	prog, err := susc.BuildMinimal(gs) // 2 channels, cycle 16
	if err != nil {
		t.Fatal(err)
	}
	base := Baseline(prog)
	ix, err := Build(prog, Config{M: 4, IndexSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := ix.Analyze()
	if m.TuningTime >= base.TuningTime {
		t.Errorf("indexed tuning %f not below baseline %f", m.TuningTime, base.TuningTime)
	}
	if m.AccessTime <= base.AccessTime {
		t.Errorf("indexed access %f not above baseline %f (no free lunch)", m.AccessTime, base.AccessTime)
	}
	if m.CycleStretch <= 1 {
		t.Errorf("CycleStretch = %f, want > 1", m.CycleStretch)
	}
}

// TestMoreSegmentsCutWaitToIndex: increasing m decreases the expected wait
// for an index segment, shrinking access time until the stretching
// overtakes it — the classic (1,m) tuning curve.
func TestMoreSegmentsCutWaitToIndex(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 64, Count: 60}})
	prog, err := susc.BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Build(prog, Config{M: 1, IndexSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	m8, err := Build(prog, Config{M: 8, IndexSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	a1, a8 := m1.Analyze(), m8.Analyze()
	if a8.AccessTime >= a1.AccessTime {
		t.Errorf("m=8 access %f not below m=1 access %f on a long cycle", a8.AccessTime, a1.AccessTime)
	}
}

// TestAnalyzeSingleSegmentClosedForm verifies the m=1 case by hand:
// cycle L'=L+x; wait-to-index averages ... computed against a direct
// numerical integration.
func TestAnalyzeClosedFormAgainstNumeric(t *testing.T) {
	prog := buildProgram(t)
	ix, err := Build(prog, Config{M: 2, IndexSlots: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := ix.Analyze()
	num := numericAccessTime(ix)
	if math.Abs(got.AccessTime-num) > 0.02 {
		t.Errorf("closed-form access %f vs numeric %f", got.AccessTime, num)
	}
}

// numericAccessTime integrates the protocol over a fine arrival grid.
func numericAccessTime(ix *Indexed) float64 {
	Ls := ix.Length()
	appearances := ix.prog.AppearanceIndex()
	n := ix.prog.GroupSet().Pages()
	const steps = 4000
	var total float64
	for s := 0; s < steps; s++ {
		u := float64(s) / steps * float64(Ls)
		// Wait to next segment start.
		best := math.Inf(1)
		var seg int
		for k, st := range ix.IndexStarts() {
			d := float64(st) - u
			for d < 0 {
				d += float64(Ls)
			}
			if d < best {
				best = d
				seg = k
			}
		}
		end := ix.IndexStarts()[seg] + ix.cfg.IndexSlots
		var pageSum float64
		for id := 0; id < n; id++ {
			pageSum += ix.distanceToPage(appearances.Columns(core.PageID(id)), end)
		}
		total += best + float64(ix.cfg.IndexSlots) + pageSum/float64(n) + 1
	}
	return total / steps
}
