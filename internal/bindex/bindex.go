// Package bindex adds classical (1, m) air indexing on top of a broadcast
// program — the energy-saving technique of the index literature the paper
// cites (Hu, Lee & Lee's hybrid index work, reference [10]): a directory of
// the cycle is interleaved m times per cycle so battery-powered clients can
// doze instead of listening continuously.
//
// Client protocol (the standard (1, m) access pattern):
//
//  1. tune in and probe the current slot (1 active slot);
//  2. doze until the next index segment begins;
//  3. read the index (IndexSlots active slots) and learn the exact slot and
//     channel of the wanted page;
//  4. doze until that slot; receive the page (1 active slot).
//
// Inserting m index segments stretches the cycle from L to L + m*IndexSlots
// columns, trading access time (latency) for tuning time (energy): without
// an index a schedule-ignorant client must listen during its entire wait.
// AvgAccessTime/AvgTuningTime quantify the trade exactly (closed form, no
// simulation), and Baseline gives the index-less comparison point.
package bindex

import (
	"errors"
	"fmt"

	"tcsa/internal/core"
)

// Config parameterises the interleaving.
type Config struct {
	// M is the number of index segments per cycle (m in "(1, m) indexing");
	// must be >= 1.
	M int
	// IndexSlots is the length of one index segment in slots; must be >= 1.
	// A real directory of n pages costs O(n / fanout) slots; callers pick
	// the value matching their page size.
	IndexSlots int
}

// Indexed is a broadcast program with index segments interleaved.
type Indexed struct {
	prog   *core.Program
	cfg    Config
	length int   // stretched cycle length
	starts []int // index segment start columns (stretched coordinates)
	// dataCol[c] maps original column c to its stretched column.
	dataCol []int
}

// Build interleaves cfg.M index segments, evenly spaced, into prog's cycle.
// Segment k is inserted before original column floor(L*k/M).
func Build(prog *core.Program, cfg Config) (*Indexed, error) {
	if prog == nil {
		return nil, errors.New("bindex: nil program")
	}
	if cfg.M < 1 {
		return nil, fmt.Errorf("bindex: m = %d", cfg.M)
	}
	if cfg.IndexSlots < 1 {
		return nil, fmt.Errorf("bindex: index length %d", cfg.IndexSlots)
	}
	L := prog.Length()
	if cfg.M > L {
		return nil, fmt.Errorf("bindex: m = %d exceeds cycle length %d", cfg.M, L)
	}
	ix := &Indexed{
		prog:    prog,
		cfg:     cfg,
		length:  L + cfg.M*cfg.IndexSlots,
		starts:  make([]int, cfg.M),
		dataCol: make([]int, L),
	}
	// anchor[k] = original column before which segment k sits.
	seg := 0
	shift := 0
	for c := 0; c < L; c++ {
		for seg < cfg.M && c == L*seg/cfg.M {
			ix.starts[seg] = c + shift
			shift += cfg.IndexSlots
			seg++
		}
		ix.dataCol[c] = c + shift
	}
	for ; seg < cfg.M; seg++ { // M == L edge: trailing segments
		ix.starts[seg] = L + shift
		shift += cfg.IndexSlots
	}
	return ix, nil
}

// Length returns the stretched cycle length.
func (ix *Indexed) Length() int { return ix.length }

// IndexStarts returns the start columns of the index segments (stretched
// coordinates; shared slice, do not modify).
func (ix *Indexed) IndexStarts() []int { return ix.starts }

// DataColumn maps an original program column to its stretched column.
func (ix *Indexed) DataColumn(c int) int { return ix.dataCol[c] }

// Metrics are the expected per-request costs of the (1, m) access protocol,
// averaged over a uniformly random arrival instant and uniformly random
// wanted page.
type Metrics struct {
	// AccessTime is the expected slots from tune-in to page reception.
	AccessTime float64
	// TuningTime is the expected active (listening) slots: the energy cost.
	TuningTime float64
	// CycleStretch is the stretched/original cycle length ratio >= 1.
	CycleStretch float64
}

// Analyze computes the closed-form expected access and tuning times.
func (ix *Indexed) Analyze() Metrics {
	Ls := float64(ix.length)
	m := Metrics{
		// Probe slot + index read + final page slot are always active.
		TuningTime:   float64(1 + ix.cfg.IndexSlots + 1),
		CycleStretch: Ls / float64(ix.prog.Length()),
	}

	// E[wait to next index segment start]: arrival uniform over the
	// stretched cycle; segments at ix.starts. Gap structure identical to
	// the page-wait computation in core.
	var waitIndex float64
	for k := range ix.starts {
		var g float64
		if k+1 < len(ix.starts) {
			g = float64(ix.starts[k+1] - ix.starts[k])
		} else {
			g = float64(ix.starts[0] + ix.length - ix.starts[len(ix.starts)-1])
		}
		waitIndex += g * g / (2 * Ls)
	}

	// E[wait from index end to the page]: for each index segment and page,
	// distance from segment end to the page's next appearance, averaged
	// over segments (arrival lands in each segment's basin with probability
	// proportional to its preceding gap — for evenly spaced segments the
	// basins are equal; we weight by basin size for exactness).
	appearances := ix.prog.AppearanceIndex()
	n := ix.prog.GroupSet().Pages()
	var afterIndex float64
	totalWeight := 0.0
	for k := range ix.starts {
		end := ix.starts[k] + ix.cfg.IndexSlots
		var basin float64
		if k+1 < len(ix.starts) {
			basin = float64(ix.starts[k+1] - ix.starts[k])
		} else {
			basin = float64(ix.starts[0] + ix.length - ix.starts[len(ix.starts)-1])
		}
		totalWeight += basin
		var sum float64
		for id := 0; id < n; id++ {
			sum += ix.distanceToPage(appearances.Columns(core.PageID(id)), end)
		}
		afterIndex += basin * sum / float64(n)
	}
	if totalWeight > 0 {
		afterIndex /= totalWeight
	}

	m.AccessTime = waitIndex + float64(ix.cfg.IndexSlots) + afterIndex + 1
	return m
}

// distanceToPage returns the slots from stretched column `from` to the next
// stretched appearance of a page with the given original appearance
// columns; pages never broadcast cost a full cycle.
func (ix *Indexed) distanceToPage(cols []int32, from int) float64 {
	if len(cols) == 0 {
		return float64(ix.length)
	}
	best := ix.length
	for _, c := range cols {
		d := ix.dataCol[c] - from
		if d < 0 {
			d += ix.length
		}
		if d < best {
			best = d
		}
	}
	return float64(best)
}

// Baseline returns the index-less costs for comparison: a schedule-ignorant
// client listens continuously, so tuning time equals access time, which is
// the program's mean wait plus the reception slot.
func Baseline(prog *core.Program) Metrics {
	a := core.Analyze(prog)
	access := a.AvgWait() + 1
	return Metrics{AccessTime: access, TuningTime: access, CycleStretch: 1}
}
