package tcsa

// Benchmark harness: one benchmark per evaluation artifact of the paper
// (Figure 3 and the four Figure 5 subplots), plus micro-benchmarks for each
// pipeline stage. The figure benchmarks regenerate the corresponding data
// series per iteration — run `go run ./cmd/airbench -experiment all` for
// the full-resolution tables these benchmarks sample.

import (
	"context"
	"testing"

	"tcsa/internal/adaptive"
	"tcsa/internal/bdisk"
	"tcsa/internal/core"
	"tcsa/internal/experiments"
	"tcsa/internal/hybrid"
	"tcsa/internal/mpb"
	"tcsa/internal/multiitem"
	"tcsa/internal/ondemand"
	"tcsa/internal/opt"
	"tcsa/internal/pamad"
	"tcsa/internal/sim"
	"tcsa/internal/susc"
	"tcsa/internal/workload"
)

// benchParams keeps figure benchmarks at sampling resolution; cmd/airbench
// runs the paper-resolution sweep.
func benchParams() experiments.Params {
	p := experiments.DefaultParams()
	p.Requests = 1000
	p.ChannelStride = 8
	return p
}

func benchFigure5(b *testing.B, dist workload.Distribution) {
	b.Helper()
	p := benchParams()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := experiments.Figure5(ctx, p, dist)
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Points) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkFigure5Normal regenerates Figure 5(a): AvgD vs channels under
// the normal group-size distribution.
func BenchmarkFigure5Normal(b *testing.B) { benchFigure5(b, workload.Normal) }

// BenchmarkFigure5LSkewed regenerates Figure 5(b).
func BenchmarkFigure5LSkewed(b *testing.B) { benchFigure5(b, workload.LSkewed) }

// BenchmarkFigure5SSkewed regenerates Figure 5(c).
func BenchmarkFigure5SSkewed(b *testing.B) { benchFigure5(b, workload.SSkewed) }

// BenchmarkFigure5Uniform regenerates Figure 5(d).
func BenchmarkFigure5Uniform(b *testing.B) { benchFigure5(b, workload.Uniform) }

// BenchmarkFigure3 regenerates the group-size distribution table.
func BenchmarkFigure3(b *testing.B) {
	p := experiments.DefaultParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(p); err != nil {
			b.Fatal(err)
		}
	}
}

// paperInstance is the paper's default uniform workload (n=1000, h=8,
// t=4..512).
func paperInstance(b *testing.B) *core.GroupSet {
	b.Helper()
	gs, err := workload.GroupSet(workload.Uniform, 8, 1000, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	return gs
}

// BenchmarkSUSCBuild measures building a valid program on the minimum
// channel count (paper §3).
func BenchmarkSUSCBuild(b *testing.B) {
	gs := paperInstance(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := susc.BuildMinimal(gs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSUSCBuild1M measures the cursor-based construction at a million
// pages (h=4, t=256..2048, 250k pages per group). The cursor engine places
// whole repeat trains per page, so per-operation allocations stay
// independent of n (pinned by TestBuildAllocsIndependentOfPages in
// internal/susc).
func BenchmarkSUSCBuild1M(b *testing.B) {
	gs, err := workload.GroupSet(workload.Uniform, 4, 1_000_000, 256, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := susc.BuildMinimal(gs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPAMADPlace1M measures the Algorithm 4 placement engine alone
// at a million pages (h=4, t=256..2048, 250k pages per group), at 1/5 of
// the minimum channels. The frequency assignment is hoisted out so the
// sample isolates PlaceEvenly — the path the incremental replan engine's
// suffix replays reuse — whose per-operation allocation count is pinned by
// TestPlaceEvenlyAllocs in internal/pamad.
func BenchmarkPAMADPlace1M(b *testing.B) {
	gs, err := workload.GroupSet(workload.Uniform, 4, 1_000_000, 256, 2)
	if err != nil {
		b.Fatal(err)
	}
	n := core.CeilDiv(gs.MinChannels(), 5)
	s, _, err := pamad.Frequencies(gs, n)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pamad.PlaceEvenly(gs, s, n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPAMADFrequencies measures Algorithm 3 alone at 1/5 of the
// minimum channels.
func BenchmarkPAMADFrequencies(b *testing.B) {
	gs := paperInstance(b)
	n := core.CeilDiv(gs.MinChannels(), 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := pamad.Frequencies(gs, n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPAMADBuild measures the full PAMAD pipeline (Algorithms 3+4).
func BenchmarkPAMADBuild(b *testing.B) {
	gs := paperInstance(b)
	n := core.CeilDiv(gs.MinChannels(), 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := pamad.Build(gs, n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMPBBuild measures the m-PB baseline at the same budget (its
// cycle is far longer, which dominates the cost).
func BenchmarkMPBBuild(b *testing.B) {
	gs := paperInstance(b)
	n := core.CeilDiv(gs.MinChannels(), 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := mpb.Build(gs, n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOPTSearch measures the exhaustive frequency search the paper
// calls "unacceptably high" (parallelised here).
func BenchmarkOPTSearch(b *testing.B) {
	gs := paperInstance(b)
	n := core.CeilDiv(gs.MinChannels(), 5)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Search(ctx, gs, n, opt.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppearanceIndex measures the flat CSR appearance-index build
// alone (the first stage of Analyze).
func BenchmarkAppearanceIndex(b *testing.B) {
	gs := paperInstance(b)
	prog, _, err := pamad.Build(gs, core.CeilDiv(gs.MinChannels(), 5))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := core.BuildAppearanceIndex(prog)
		if ix.Pages() != gs.Pages() {
			b.Fatal("bad index")
		}
	}
}

// BenchmarkAnalyze measures the closed-form delay analysis of a PAMAD
// program.
func BenchmarkAnalyze(b *testing.B) {
	gs := paperInstance(b)
	prog, _, err := pamad.Build(gs, core.CeilDiv(gs.MinChannels(), 5))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := core.Analyze(prog)
		if a.AvgWait() <= 0 {
			b.Fatal("bad analysis")
		}
	}
}

// BenchmarkMeasure3000 measures the paper's 3000-request evaluation of one
// program.
func BenchmarkMeasure3000(b *testing.B) {
	gs := paperInstance(b)
	prog, _, err := pamad.Build(gs, core.CeilDiv(gs.MinChannels(), 5))
	if err != nil {
		b.Fatal(err)
	}
	a := core.Analyze(prog)
	reqs, err := workload.GenerateRequests(gs, prog.Length(), workload.RequestConfig{Count: 3000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.MeasureAnalyzed(a, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// measureStream1M builds the paper-default program and a million-request
// generated stream for the streaming-engine benchmarks.
func measureStream1M(b *testing.B) (*core.Analysis, workload.Stream) {
	b.Helper()
	gs := paperInstance(b)
	prog, _, err := pamad.Build(gs, core.CeilDiv(gs.MinChannels(), 5))
	if err != nil {
		b.Fatal(err)
	}
	stream, err := workload.NewStream(gs, prog.Length(), workload.RequestConfig{Count: 1 << 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return core.Analyze(prog), stream
}

// BenchmarkMeasureStream1M measures the serial streaming engine over a
// million generated requests: no request slice, no sample slices.
func BenchmarkMeasureStream1M(b *testing.B) {
	a, stream := measureStream1M(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.MeasureStream(a, stream); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureParallel1M measures the sharded engine at GOMAXPROCS
// workers over the same million-request stream; the result is bit-for-bit
// what BenchmarkMeasureStream1M's serial pass computes.
func BenchmarkMeasureParallel1M(b *testing.B) {
	a, stream := measureStream1M(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.MeasureParallel(a, stream, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventSimClients measures the full discrete-event client
// simulation (airwave + eventsim) for 200 schedule-aware clients.
func BenchmarkEventSimClients(b *testing.B) {
	gs, err := workload.GroupSet(workload.Uniform, 6, 300, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	prog, _, err := pamad.Build(gs, 8)
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := workload.GenerateRequests(gs, prog.Length(), workload.RequestConfig{Count: 200, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(prog, reqs, sim.Config{Mode: sim.ScheduleAware}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFacadeBuild measures the public API end to end on the paper's
// default instance at the minimum channel count (SUSC path) and one below
// (PAMAD path).
func BenchmarkFacadeBuild(b *testing.B) {
	gs := paperInstance(b)
	min := gs.MinChannels()
	b.Run("susc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Build(gs, min); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pamad", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Build(gs, min-1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBDiskBuild measures the Broadcast Disks baseline construction.
func BenchmarkBDiskBuild(b *testing.B) {
	gs := paperInstance(b)
	disks := bdisk.DeadlineDisks(gs)
	n := core.CeilDiv(gs.MinChannels(), 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bdisk.Build(gs, disks, n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiItemOptimal measures the exact set-retrieval planner on an
// 8-page query over a paper-scale PAMAD program.
func BenchmarkMultiItemOptimal(b *testing.B) {
	gs := paperInstance(b)
	prog, _, err := pamad.Build(gs, core.CeilDiv(gs.MinChannels(), 5))
	if err != nil {
		b.Fatal(err)
	}
	a := core.Analyze(prog)
	query := make([]core.PageID, 8)
	for i := range query {
		query[i] = core.PageID(i * 111)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multiitem.Optimal(a, query, 3.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveRebuild measures one closed-loop epoch rebuild at paper
// scale.
func BenchmarkAdaptiveRebuild(b *testing.B) {
	ctrl, err := adaptive.New(1000, adaptive.Config{Channels: 13, Fallback: 512})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := ctrl.Report(i, float64(4+(i%500))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctrl.Rebuild(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHybridRun measures the coupled broadcast+pull simulation with
// 500 impatient clients.
func BenchmarkHybridRun(b *testing.B) {
	gs, err := workload.GroupSet(workload.Uniform, 6, 300, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	prog, _, err := pamad.Build(gs, 8)
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := workload.GenerateRequests(gs, prog.Length(), workload.RequestConfig{Count: 500, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	cfg := hybrid.Config{AbandonAfter: 1.5, Pull: ondemand.Config{ServiceTime: 3}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hybrid.Run(prog, reqs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
