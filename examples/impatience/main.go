// Impatience: the paper's §1 hybrid-system motivation, measured.
//
// "When the waiting time is longer than the expected time of a client, the
// client could switch the access from a broadcast channel to an on-demand
// channel ... Too often and too many such actions could seriously congest
// the on-demand channels."
//
// We build the same under-provisioned broadcast system twice — once
// scheduled with PAMAD, once with the m-PB baseline — and run the coupled
// hybrid simulation (internal/hybrid): impatient clients defect to the
// pull server after 1.5x their expected time. Because PAMAD keeps
// broadcast delays near the floor, it sheds far less load onto the uplink.
//
//	go run ./examples/impatience
package main

import (
	"fmt"
	"log"

	"tcsa/internal/core"
	"tcsa/internal/hybrid"
	"tcsa/internal/mpb"
	"tcsa/internal/ondemand"
	"tcsa/internal/pamad"
	"tcsa/internal/workload"
)

func main() {
	gs, err := workload.GroupSet(workload.Uniform, 6, 300, 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	// About a third of the Theorem 3.1 minimum: scarce, but past the knee
	// for PAMAD while m-PB still misses deadlines in volume.
	const channels = 8
	fmt.Printf("instance %v on %d channels (minimum %d)\n\n", gs, channels, gs.MinChannels())

	pamadProg, _, err := pamad.Build(gs, channels)
	if err != nil {
		log.Fatal(err)
	}
	mpbProg, _, err := mpb.Build(gs, channels)
	if err != nil {
		log.Fatal(err)
	}

	p := runHybrid(pamadProg, gs)
	m := runHybrid(mpbProg, gs)

	fmt.Printf("%-30s %12s %12s\n", "", "PAMAD", "m-PB")
	row := func(label, format string, a, b any) {
		fmt.Printf("%-30s %12s %12s\n", label, fmt.Sprintf(format, a), fmt.Sprintf(format, b))
	}
	row("served from broadcast", "%d", p.Air.Served, m.Air.Served)
	row("defected to on-demand", "%d", p.Air.Abandoned, m.Air.Abandoned)
	row("pull share", "%.1f%%", 100*p.PullShare, 100*m.PullShare)
	row("broadcast avg wait (slots)", "%.2f", p.Air.AvgWait, m.Air.AvgWait)
	row("pull avg response (slots)", "%.2f", p.Pull.AvgResponse, m.Pull.AvgResponse)
	row("pull p99 response (slots)", "%.2f", p.Pull.Response.P99, m.Pull.Response.P99)
	row("pull max queue length", "%d", p.Pull.MaxQueueLen, m.Pull.MaxQueueLen)
	row("pull deadline misses", "%d", p.Pull.DeadlineMisses, m.Pull.DeadlineMisses)
	row("end-to-end mean (slots)", "%.2f", p.EndToEnd.Mean, m.EndToEnd.Mean)
	row("end-to-end p99 (slots)", "%.2f", p.EndToEnd.P99, m.EndToEnd.P99)

	if p.Air.Abandoned < m.Air.Abandoned {
		fmt.Printf("\nPAMAD pushed %.1fx fewer clients onto the on-demand channel.\n",
			float64(m.Air.Abandoned)/float64(max(1, p.Air.Abandoned)))
	}
}

func runHybrid(prog *core.Program, gs *core.GroupSet) *hybrid.Report {
	reqs, err := workload.GenerateRequests(gs, prog.Length(), workload.RequestConfig{
		Count: 2000, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := hybrid.Run(prog, reqs, hybrid.Config{
		AbandonAfter: 1.5,
		Pull:         ondemand.Config{ServiceTime: 3, Discipline: ondemand.EDF},
	})
	if err != nil {
		log.Fatal(err)
	}
	return rep
}
