// Stock ticker: the paper's first motivating scenario (§1) end to end.
//
// A brokerage broadcasts quote pages for 60 instruments over the air.
// Clients' freshness requirements differ per instrument — day traders on
// hot stocks tolerate only a few slots of staleness, index followers far
// more — and the server does not know them a priori. The pipeline:
//
//  1. clients piggyback their tolerated wait on every pull request
//     (internal/estimator, the paper's "piggyback technique" citation);
//
//  2. the server takes a conservative per-page estimate and rearranges the
//     raw times onto geometric groups (paper §2);
//
//  3. SUSC builds a valid program on the Theorem 3.1 minimum channels;
//
//  4. a simulated client population confirms nobody waits past their
//     stated tolerance.
//
//     go run ./examples/stockticker
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tcsa"
	"tcsa/internal/core"
	"tcsa/internal/estimator"
	"tcsa/internal/sim"
	"tcsa/internal/workload"
)

const instruments = 60

func main() {
	// Ground truth: each instrument's true client tolerance in slots.
	// Hot stocks (low IDs) are tight; the tail is relaxed.
	rng := rand.New(rand.NewSource(2026))
	truth := make([]float64, instruments)
	for i := range truth {
		switch {
		case i < 10:
			truth[i] = 3 + rng.Float64()*3 // 3-6 slots
		case i < 35:
			truth[i] = 8 + rng.Float64()*10 // 8-18
		default:
			truth[i] = 30 + rng.Float64()*40 // 30-70
		}
	}

	// Step 1-2: piggybacked reports (noisy: clients report >= their real
	// need) feed the conservative estimator.
	agg, err := estimator.NewAggregator(instruments, estimator.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	for r := 0; r < 20000; r++ {
		page := core.PageID(rng.Intn(instruments))
		slack := 1 + rng.Float64()*0.5 // clients overstate tolerance a bit
		if err := agg.Report(page, truth[page]*slack); err != nil {
			log.Fatal(err)
		}
	}
	re, err := agg.Groups(2, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated groups: %v\n", re.Set)

	// Step 3: schedule on the proven minimum number of channels.
	sched, err := tcsa.Build(re.Set, tcsa.MinChannels(re.Set))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduler: %s over %d channels, cycle %d slots, valid=%v\n",
		sched.Algorithm, sched.Channels, sched.Program.Length(), sched.Valid())

	// Step 4: drive a client population through the event simulator and
	// check waits against each instrument's TRUE tolerance.
	reqs, err := workload.GenerateRequests(re.Set, sched.Program.Length(), workload.RequestConfig{
		Count: 5000,
		Seed:  11,
	})
	if err != nil {
		log.Fatal(err)
	}
	outcome, err := sim.Run(sched.Program, reqs, sim.Config{Mode: sim.ScheduleAware})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d quote requests: avg wait %.2f slots, p99 %.2f\n",
		outcome.Served, outcome.AvgWait, outcome.Wait.P99)
	if outcome.AvgDelay == 0 {
		fmt.Println("no client waited beyond its scheduled expected time")
	}

	// Cross-check against ground truth (IDs were remapped by rearrangement).
	// Worst-case wait = the page's maximum appearance gap; the program
	// guarantees it is <= the rearranged time <= the estimate <= truth.
	a := tcsa.Analyze(sched.Program)
	violations := 0
	for orig := 0; orig < instruments; orig++ {
		if float64(a.WorstGap(re.IDs[orig])) > truth[orig] {
			violations++
		}
	}
	fmt.Printf("instruments whose true tolerance could ever be exceeded: %d of %d\n",
		violations, instruments)
}
