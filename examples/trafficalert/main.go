// Traffic alerts: the paper's second motivating scenario (§1) under
// channel scarcity.
//
// A city broadcasts incident pages to vehicles: accident warnings must
// arrive within 8 slots, congestion updates within 32, roadwork notices
// within 128. The city has far fewer broadcast channels than Theorem 3.1
// demands, so a hard guarantee is impossible; the question is how much
// value degrades. We compare the two §4 strategies head to head:
//
//   - PAMAD: lower each group's broadcast frequency (the paper's method);
//   - m-PB: keep deadline-proportional frequencies and stretch the cycle.
//
// The program also reports per-group delays, showing PAMAD's even
// dispersion of the unavoidable lateness.
//
//	go run ./examples/trafficalert
package main

import (
	"fmt"
	"log"

	"tcsa"
	"tcsa/internal/mpb"
	"tcsa/internal/sim"
	"tcsa/internal/workload"
)

func main() {
	gs, err := tcsa.NewGroupSet([]tcsa.Group{
		{Time: 8, Count: 40},   // accident warnings
		{Time: 32, Count: 90},  // congestion updates
		{Time: 128, Count: 70}, // roadwork notices
	})
	if err != nil {
		log.Fatal(err)
	}
	need := tcsa.MinChannels(gs)
	const have = 3
	fmt.Printf("instance %v needs %d channels; the city has %d\n\n", gs, need, have)

	// PAMAD via the facade (insufficient budget selects it automatically).
	sched, err := tcsa.Build(gs, have)
	if err != nil {
		log.Fatal(err)
	}
	reqs, err := workload.GenerateRequests(gs, sched.Program.Length(), workload.RequestConfig{
		Count: 4000, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	pm, err := sim.Measure(sched.Program, reqs)
	if err != nil {
		log.Fatal(err)
	}

	// m-PB baseline on the same budget.
	mProg, mRes, err := mpb.Build(gs, have)
	if err != nil {
		log.Fatal(err)
	}
	mReqs, err := workload.GenerateRequests(gs, mProg.Length(), workload.RequestConfig{
		Count: 4000, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	mm, err := sim.Measure(mProg, mReqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %12s %12s\n", "", "PAMAD", "m-PB")
	fmt.Printf("%-28s %12s %12s\n", "frequencies S_i",
		fmt.Sprint(sched.Frequencies), fmt.Sprint([]int(mRes.Frequencies)))
	fmt.Printf("%-28s %12d %12d\n", "cycle length (slots)", sched.Program.Length(), mProg.Length())
	fmt.Printf("%-28s %12.2f %12.2f\n", "avg delay AvgD (slots)", pm.AvgDelay, mm.AvgDelay)
	fmt.Printf("%-28s %12.2f %12.2f\n", "p99 delay (slots)", pm.Delay.P99, mm.Delay.P99)
	fmt.Printf("%-28s %12.3f %12.3f\n", "deadline-miss ratio", pm.MissRatio, mm.MissRatio)

	// Per-group view: how the delay is distributed across urgency classes.
	fmt.Println("\nper-group average delay (slots beyond expected time):")
	pa, ma := tcsa.Analyze(sched.Program), tcsa.Analyze(mProg)
	for i := 0; i < gs.Len(); i++ {
		fmt.Printf("  t=%-4d  PAMAD %8.2f   m-PB %8.2f\n",
			gs.Group(i).Time, pa.GroupDelay(i), ma.GroupDelay(i))
	}
	fmt.Printf("\nPAMAD carries %.1fx less average delay on the same %d channels.\n",
		mm.AvgDelay/pm.AvgDelay, have)
}
