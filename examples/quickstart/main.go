// Quickstart: schedule time-constrained broadcast data with the public API.
//
// The instance is the paper's running example (Figure 2): three groups of
// pages with expected times 2, 4 and 8 slots. We build a broadcast program
// twice — once with enough channels for a hard guarantee (SUSC) and once
// with one channel too few (PAMAD) — and inspect what clients experience.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tcsa"
)

func main() {
	// 3 pages must reach clients within 2 slots, 5 within 4, 3 within 8.
	gs, err := tcsa.Geometric(2, 2, []int{3, 5, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance %v needs at least %d channels (Theorem 3.1)\n\n",
		gs, tcsa.MinChannels(gs))

	// Sufficient channels: a valid program — every expected time is met no
	// matter when a client starts listening.
	sufficient, err := tcsa.Build(gs, tcsa.MinChannels(gs))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with %d channels: %s, cycle %d slots, valid=%v, avg delay %.3f\n",
		sufficient.Channels, sufficient.Algorithm, sufficient.Program.Length(),
		sufficient.Valid(), sufficient.ExpectedDelay)
	fmt.Println(sufficient.Program)

	// One channel short: PAMAD reduces broadcast frequencies and disperses
	// the unavoidable delay evenly instead of dropping pages.
	tight, err := tcsa.Build(gs, tcsa.MinChannels(gs)-1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with %d channels: %s, cycle %d slots, frequencies %v\n",
		tight.Channels, tight.Algorithm, tight.Program.Length(), tight.Frequencies)
	fmt.Printf("average delay beyond the expected time: %.3f slots\n", tight.ExpectedDelay)
	fmt.Println(tight.Program)

	// Arbitrary expected times are admitted via rearrangement (paper §2):
	// 2,3,4,6,9 tighten to 2,2,4,4,8 with ratio 2.
	r, err := tcsa.Rearrange([]int{2, 3, 4, 6, 9}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rearranged times %v -> groups %v (waste %.1f%%)\n",
		[]int{2, 3, 4, 6, 9}, r.Set, 100*r.Waste)
}
