// Package tcsa is the public face of this reproduction of
// "Time-Constrained Service on Air" (Chung, Chen, Lee; ICDCS 2005): a
// library for scheduling wireless broadcast data so that every client
// receives each page within that page's expected time — or, when the
// broadcast channels are too few for that guarantee, with the minimum
// average delay beyond it.
//
// # Quick start
//
//	gs, err := tcsa.Geometric(2, 2, []int{3, 5, 3}) // t = 2,4,8; P = 3,5,3
//	...
//	sched, err := tcsa.Build(gs, 3) // 3 broadcast channels available
//	// sched.Algorithm == tcsa.AlgorithmPAMAD (4 channels would be needed
//	// for a zero-delay program; see sched.MinChannels)
//	fmt.Println(sched.ExpectedDelay) // average slots beyond expected time
//
// Build selects the paper's appropriate algorithm automatically: SUSC
// (Section 3) when the channel budget meets the Theorem 3.1 minimum — the
// resulting program is *valid*: every page reaches every client within its
// expected time regardless of when the client tunes in — and PAMAD
// (Section 4) otherwise, which lowers per-group broadcast frequencies to
// fit the channels while minimising the average delay.
//
// Arbitrary per-page expected times are admitted through Rearrange, which
// tightens them onto the geometric group structure the schedulers need.
// The internal packages expose the full machinery (baselines, exhaustive
// search, workload generation, client/on-demand simulation, air indexing)
// for experimentation; see DESIGN.md.
package tcsa

import (
	"fmt"

	"tcsa/internal/core"
	"tcsa/internal/pamad"
	"tcsa/internal/susc"
)

// Core model types, re-exported for API ergonomics.
type (
	// Group is one expected-time group: Count pages sharing Time.
	Group = core.Group
	// GroupSet is a validated problem instance.
	GroupSet = core.GroupSet
	// Program is a cyclic multi-channel broadcast program.
	Program = core.Program
	// Analysis is the closed-form delay analysis of a Program.
	Analysis = core.Analysis
	// PageID identifies a broadcast page.
	PageID = core.PageID
	// Rearrangement maps arbitrary expected times onto geometric groups.
	Rearrangement = core.Rearrangement
)

// None marks an empty broadcast slot.
const None = core.None

// Re-exported sentinel errors (wrap-aware via errors.Is).
var (
	ErrInvalidGroupSet      = core.ErrInvalidGroupSet
	ErrInsufficientChannels = core.ErrInsufficientChannels
	ErrInvalidProgram       = core.ErrInvalidProgram
)

// NewGroupSet validates and builds a problem instance; see core.NewGroupSet.
func NewGroupSet(groups []Group) (*GroupSet, error) { return core.NewGroupSet(groups) }

// Geometric builds the canonical instance t_i = t1 * c^(i-1).
func Geometric(t1, c int, counts []int) (*GroupSet, error) { return core.Geometric(t1, c, counts) }

// Rearrange tightens arbitrary per-page expected times onto geometric
// groups with ratio c (Section 2 of the paper).
func Rearrange(times []int, c int) (*Rearrangement, error) { return core.Rearrange(times, c) }

// RearrangeAuto tries ratios 2..maxRatio and keeps the cheapest.
func RearrangeAuto(times []int, maxRatio int) (*Rearrangement, error) {
	return core.RearrangeAuto(times, maxRatio)
}

// Analyze computes the closed-form delay profile of a finished program.
func Analyze(p *Program) *Analysis { return core.Analyze(p) }

// MinChannels returns the Theorem 3.1 minimum channel count for gs.
func MinChannels(gs *GroupSet) int { return gs.MinChannels() }

// Algorithm names the scheduler Build selected.
type Algorithm string

const (
	// AlgorithmSUSC is Scheduling Under Sufficient Channels (paper §3).
	AlgorithmSUSC Algorithm = "SUSC"
	// AlgorithmPAMAD is Progressively Approaching Minimum Average Delay
	// (paper §4).
	AlgorithmPAMAD Algorithm = "PAMAD"
)

// Schedule is the result of Build.
type Schedule struct {
	// Program is the generated cyclic broadcast program.
	Program *Program
	// Algorithm identifies which scheduler produced it.
	Algorithm Algorithm
	// Channels is the channel budget the program uses.
	Channels int
	// MinChannels is the Theorem 3.1 bound for the instance.
	MinChannels int
	// Frequencies is the per-group broadcast frequency S_1..S_h.
	Frequencies []int
	// ExpectedDelay is the closed-form average delay beyond the expected
	// time (slots, uniform page access); 0 for a valid (SUSC) program.
	ExpectedDelay float64
	// ExpectedWait is the closed-form average waiting time in slots.
	ExpectedWait float64
}

// Build produces a broadcast program for gs over the given channel budget,
// selecting SUSC when channels suffice for a valid program (Theorem 3.1)
// and PAMAD otherwise.
func Build(gs *GroupSet, channels int) (*Schedule, error) {
	if gs == nil {
		return nil, fmt.Errorf("%w: nil group set", ErrInvalidGroupSet)
	}
	if channels < 1 {
		return nil, fmt.Errorf("%w: %d channels", ErrInsufficientChannels, channels)
	}
	min := gs.MinChannels()
	sched := &Schedule{Channels: channels, MinChannels: min}
	if channels >= min {
		prog, err := susc.Build(gs, channels)
		if err != nil {
			return nil, err
		}
		sched.Program = prog
		sched.Algorithm = AlgorithmSUSC
		th := gs.MaxTime()
		for i := 0; i < gs.Len(); i++ {
			sched.Frequencies = append(sched.Frequencies, th/gs.Group(i).Time)
		}
	} else {
		prog, res, err := pamad.Build(gs, channels)
		if err != nil {
			return nil, err
		}
		sched.Program = prog
		sched.Algorithm = AlgorithmPAMAD
		sched.Frequencies = append(sched.Frequencies, res.Frequencies...)
	}
	a := core.Analyze(sched.Program)
	sched.ExpectedDelay = a.AvgDelay()
	sched.ExpectedWait = a.AvgWait()
	return sched, nil
}

// Valid reports whether the schedule guarantees every expected time (i.e.
// the program passes the Section 3.1 validity conditions).
func (s *Schedule) Valid() bool {
	return s.Program != nil && s.Program.Validate() == nil
}
