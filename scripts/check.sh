#!/usr/bin/env sh
# check.sh — the full verification pipeline, used locally (`make check`)
# and by CI. Fails fast on the first broken gate.
#
# FUZZTIME (default 10s) bounds each fuzz smoke run; set FUZZTIME=0 to
# skip the fuzz stage entirely (e.g. on very slow machines).
set -eu

cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> airvet ./... (against lint_baseline.json)"
go run ./cmd/airvet -baseline lint_baseline.json ./...

echo "==> go test -shuffle=on ./..."
go test -shuffle=on ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/netcast/... ./internal/online/... ./internal/opt/... ./internal/ptas/... ./internal/replan/... ./internal/sim/... ./internal/chaos/... ./internal/experiments/... ./cmd/...

echo "==> chaos smoke (determinism gate against BENCH_chaos.json)"
go run ./cmd/airbench -chaos -chaosout BENCH_chaos_new.json -chaosbaseline BENCH_chaos.json

echo "==> netcast smoke (fan-out gate against BENCH_netcast.json)"
go run ./cmd/airbench -netcast -netcastout BENCH_netcast_new.json -netcastbaseline BENCH_netcast.json

echo "==> loadgen smoke (zero-fault scenarios self-verify against sim.MeasureStream)"
go run ./cmd/loadgen -clients 1000 -dists uniform,sskew -out ""

echo "==> optscale smoke (PTAS scaling gate against BENCH_optscale.json)"
go run ./cmd/airbench -optscale -optscaleout BENCH_optscale_new.json -optscalebaseline BENCH_optscale.json

echo "==> replan smoke (incremental >=10x gate against BENCH_replan.json)"
go run ./cmd/airbench -replan -replanout BENCH_replan_new.json -replanbaseline BENCH_replan.json

echo "==> hybrid smoke (online tier bit-identity + oracles against BENCH_hybrid.json)"
go run ./cmd/airbench -hybrid -hybridout BENCH_hybrid_new.json -hybridbaseline BENCH_hybrid.json

if [ "$FUZZTIME" = "0" ]; then
    echo "==> fuzz smoke skipped (FUZZTIME=0)"
else
    echo "==> fuzz smoke (${FUZZTIME} per target)"
    go test -fuzz=FuzzRearrange'$'          -fuzztime="$FUZZTIME" ./internal/core/
    go test -fuzz=FuzzRearrangeMonotone'$'  -fuzztime="$FUZZTIME" ./internal/core/
    go test -fuzz=FuzzProgramJSON'$'        -fuzztime="$FUZZTIME" ./internal/core/
    go test -fuzz=FuzzGroupSetJSON'$'       -fuzztime="$FUZZTIME" ./internal/core/
    go test -fuzz=FuzzParseFrame'$'         -fuzztime="$FUZZTIME" ./internal/netcast/
    go test -fuzz=FuzzPAMADPlacement'$'     -fuzztime="$FUZZTIME" ./internal/pamad/
    go test -fuzz=FuzzSUSCEquivalence'$'    -fuzztime="$FUZZTIME" ./internal/susc/
    go test -fuzz=FuzzSketchQuantile'$'     -fuzztime="$FUZZTIME" ./internal/stats/
    go test -fuzz=FuzzChaosDeterminism'$'   -fuzztime="$FUZZTIME" ./internal/chaos/
    go test -fuzz=FuzzPTASEquivalence'$'    -fuzztime="$FUZZTIME" ./internal/opt/
    go test -fuzz=FuzzReplanEquivalence'$'  -fuzztime="$FUZZTIME" ./internal/replan/
    go test -fuzz=FuzzOndemandQueue'$'      -fuzztime="$FUZZTIME" ./internal/ondemand/
    go test -fuzz=FuzzOnlineEquivalence'$'  -fuzztime="$FUZZTIME" ./internal/online/
fi

echo "==> all checks passed"
